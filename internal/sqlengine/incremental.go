package sqlengine

import (
	"sort"
	"sync"

	"gsn/internal/stream"
)

// AggMaintainer incrementally maintains the aggregates of a compiled
// aggregate-only plan over a sliding window, so the dominant
// `SELECT agg(col) FROM wrapper` trigger shape is O(aggregates) per
// evaluation instead of O(window). It implements storage.Observer: the
// table invokes OnInsert/OnEvict/OnTruncate under its own lock and in
// arrival (FIFO) order; Result is called from the trigger workers, so
// the maintainer carries its own mutex.
//
// COUNT/SUM/AVG subtract evicted inputs; MIN/MAX keep the classic
// sliding-window monotonic deque; LAST keeps a FIFO of non-NULL inputs.
// A value the aggregate cannot digest (non-numeric SUM input,
// incomparable MIN operands) poisons the maintainer: Result returns nil
// from then on and the caller falls back to full plan execution, which
// reports the error through the normal path.
type AggMaintainer struct {
	specs []IncAggSpec
	cols  []Column

	mu     sync.Mutex
	states []incState
	broken bool
	seq    uint64 // next insert sequence number
	headSq uint64 // sequence number of the next eviction (FIFO)

	// floatEvicts counts evicted float SUM/AVG inputs since the last
	// rebuild. Subtract-on-evict float maintenance accumulates rounding
	// error (and can be corrupted outright by catastrophic absorption
	// when magnitudes differ wildly), so after resyncFloatEvery such
	// evictions NeedsResync reports true and the owner rebuilds the
	// state from the live window (storage.Table.SetObserver replays it).
	floatEvicts uint64
}

// resyncFloatEvery bounds float SUM/AVG drift: one O(window) rebuild
// per this many evicted float inputs keeps amortised maintenance O(1).
const resyncFloatEvery = 65536

// seqValue is one deque entry: the arrival sequence of the element it
// came from, and the aggregate input value.
type seqValue struct {
	seq uint64
	v   stream.Value
}

// incState is the running state of one aggregate column.
type incState struct {
	count  int64 // non-NULL inputs (all rows for COUNT(*))
	intSum int64
	fSum   float64
	nFloat int64
	deque  []seqValue // MIN/MAX monotonic deque, or LAST FIFO
}

// insert folds one arriving input value into the state. v is the
// aggregate argument (nil for SQL NULL; ignored except by COUNT(*),
// which passes spec.Col < 0 and no value). seq is the element's arrival
// sequence. It returns false when the value poisons the state (the
// owner falls back to full plan execution, which reports the error).
func (st *incState) insert(spec *IncAggSpec, v stream.Value, seq uint64) bool {
	if spec.Col < 0 { // COUNT(*)
		st.count++
		return true
	}
	if v == nil {
		return true // SQL aggregates ignore NULLs
	}
	st.count++
	switch spec.Kind {
	case IncSum, IncAvg:
		switch x := v.(type) {
		case int64:
			st.intSum += x
		case float64:
			st.fSum += x
			st.nFloat++
		default:
			return false
		}
	case IncMin, IncMax:
		want := -1 // MIN keeps an increasing deque: pop backs >= v
		if spec.Kind == IncMax {
			want = 1 // MAX keeps a decreasing deque: pop backs <= v
		}
		for len(st.deque) > 0 {
			c, known, err := compare(st.deque[len(st.deque)-1].v, v)
			if err != nil || !known {
				return false
			}
			if c*want > 0 {
				break
			}
			st.deque = st.deque[:len(st.deque)-1]
		}
		st.deque = append(st.deque, seqValue{seq: seq, v: v})
	case IncLast:
		st.deque = append(st.deque, seqValue{seq: seq, v: v})
	}
	return true
}

// evict subtracts one evicted input value. seq is the arrival sequence
// the value carried on insert; floatEvicts is bumped for evicted float
// SUM/AVG inputs so the owner can bound rounding drift (NeedsResync).
// It returns false when the value poisons the state.
func (st *incState) evict(spec *IncAggSpec, v stream.Value, seq uint64, floatEvicts *uint64) bool {
	if spec.Col < 0 {
		st.count--
		return true
	}
	if v == nil {
		return true
	}
	st.count--
	switch spec.Kind {
	case IncSum, IncAvg:
		switch x := v.(type) {
		case int64:
			st.intSum -= x
		case float64:
			st.fSum -= x
			st.nFloat--
			*floatEvicts++
		default:
			return false
		}
	case IncMin, IncMax, IncLast:
		if len(st.deque) > 0 && st.deque[0].seq == seq {
			st.deque = st.deque[1:]
		}
	}
	return true
}

// result finalises the aggregate value. Empty-state semantics match
// aggState: COUNT is 0, the rest are NULL.
func (st *incState) result(kind IncAggKind) stream.Value {
	switch kind {
	case IncCount:
		return st.count
	case IncSum:
		if st.count == 0 {
			return nil
		}
		if st.nFloat == 0 {
			return st.intSum
		}
		return float64(st.intSum) + st.fSum
	case IncAvg:
		if st.count == 0 {
			return nil
		}
		return (float64(st.intSum) + st.fSum) / float64(st.count)
	case IncMin, IncMax:
		if len(st.deque) > 0 {
			return st.deque[0].v
		}
		return nil
	case IncLast:
		if len(st.deque) > 0 {
			return st.deque[len(st.deque)-1].v
		}
		return nil
	}
	return nil
}

// NewAggMaintainer builds a maintainer for a plan's incremental program
// (Plan.Incremental).
func NewAggMaintainer(specs []IncAggSpec) *AggMaintainer {
	cols := make([]Column, len(specs))
	for i, s := range specs {
		cols[i] = s.Out
	}
	return &AggMaintainer{specs: specs, cols: cols, states: make([]incState, len(specs))}
}

// OnInsert implements storage.Observer.
func (m *AggMaintainer) OnInsert(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	seq := m.seq
	m.seq++
	for i := range m.specs {
		spec := &m.specs[i]
		var v stream.Value
		if spec.Col >= 0 {
			v = inputValue(e, spec.Col)
		}
		if !m.states[i].insert(spec, v, seq) {
			m.broken = true
			return
		}
	}
}

// OnEvict implements storage.Observer. Eviction order is the table's
// arrival order, so the evicted element always carries the sequence
// number at the head.
func (m *AggMaintainer) OnEvict(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	seq := m.headSq
	m.headSq++
	for i := range m.specs {
		spec := &m.specs[i]
		var v stream.Value
		if spec.Col >= 0 {
			v = inputValue(e, spec.Col)
		}
		if !m.states[i].evict(spec, v, seq, &m.floatEvicts) {
			m.broken = true
			return
		}
	}
}

// OnTruncate implements storage.Observer: the window was cleared, so
// every running aggregate restarts empty.
func (m *AggMaintainer) OnTruncate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.states {
		m.states[i] = incState{}
	}
	m.seq = 0
	m.headSq = 0
	m.broken = false
	m.floatEvicts = 0
}

// NeedsResync reports that enough float inputs have been subtracted
// out that accumulated rounding error warrants rebuilding the state
// from the live window (re-attach with SetObserver, which replays it).
func (m *AggMaintainer) NeedsResync() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floatEvicts >= resyncFloatEvery
}

// inputValue extracts the aggregate input column from an element,
// mapping the implicit TIMED column (index == element length) to the
// timestamp.
func inputValue(e stream.Element, col int) stream.Value {
	if col == e.Len() {
		return int64(e.Timestamp())
	}
	return e.Value(col)
}

// Result builds the single-row aggregate relation, or nil when the
// maintainer is poisoned and the caller must fall back to full
// execution. Empty-window semantics match aggState: COUNT is 0, the
// rest are NULL.
func (m *AggMaintainer) Result() *Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return nil
	}
	row := make([]stream.Value, len(m.specs))
	for i := range m.specs {
		row[i] = m.states[i].result(m.specs[i].Kind)
	}
	return &Relation{Cols: m.cols, Rows: [][]stream.Value{row}}
}

// GroupedAggMaintainer incrementally maintains a grouped aggregate-only
// plan (SELECT key..., agg(col)... FROM w GROUP BY key...) over a
// sliding count window: one hash bucket per live group-key vector, each
// holding the same incState machinery AggMaintainer uses per aggregate,
// plus a FIFO of the group's live row sequences so group membership —
// and the first-seen output order the interpreter produces — survives
// eviction exactly. Insert and evict are O(group keys + aggregates);
// Result is O(output), independent of the window size.
//
// It implements storage.Observer with the same contract as
// AggMaintainer: table callbacks arrive under the table lock in arrival
// (FIFO) order, Result carries its own mutex, and an input the
// aggregates cannot digest poisons the maintainer (Result returns nil,
// the caller falls back to full plan execution which reports the
// error).
//
// Result projects each group's key values as captured when the group
// was first seen, while a window rescan projects the oldest live
// row's. The two can differ only when distinct key representations
// compare equal — float -0.0 vs +0.0 — so callers wanting byte
// identity with the scanning tiers must not attach this maintainer to
// plans whose group keys are float columns (the container's
// newIncMaintainer enforces that).
type GroupedAggMaintainer struct {
	prog *GroupedIncProgram

	mu      sync.Mutex
	groups  map[string]*incGroup
	broken  bool
	seq     uint64         // next insert sequence number
	keysBuf []stream.Value // scratch key vector, guarded by mu
	keyBuf  []byte         // scratch encoded key, guarded by mu

	floatEvicts uint64 // see AggMaintainer.floatEvicts
}

// incGroup is the live state of one group-key vector.
type incGroup struct {
	keys   []stream.Value // the group's key values, in GROUP BY order
	seqs   []uint64       // arrival sequences of the group's live rows (FIFO)
	states []incState
}

// NewGroupedAggMaintainer builds a maintainer for a plan's grouped
// incremental program (Plan.IncrementalGrouped).
func NewGroupedAggMaintainer(prog *GroupedIncProgram) *GroupedAggMaintainer {
	return &GroupedAggMaintainer{
		prog:    prog,
		groups:  make(map[string]*incGroup),
		keysBuf: make([]stream.Value, len(prog.Keys)),
	}
}

// encodeGroupKey fills the scratch key vector from the element and
// encodes it into the scratch byte buffer (callers hold mu). Lookups
// via groups[string(m.keyBuf)] compile without a string allocation —
// these run per element on the ingest path, under the table lock — so
// the key string is materialised only on first sight of a group.
func (m *GroupedAggMaintainer) encodeGroupKey(e stream.Element) {
	for i, col := range m.prog.Keys {
		m.keysBuf[i] = inputValue(e, col)
	}
	m.keyBuf = appendRowKey(m.keyBuf[:0], m.keysBuf)
}

// OnInsert implements storage.Observer.
func (m *GroupedAggMaintainer) OnInsert(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	seq := m.seq
	m.seq++
	m.encodeGroupKey(e)
	g := m.groups[string(m.keyBuf)]
	if g == nil {
		g = &incGroup{
			keys:   append([]stream.Value(nil), m.keysBuf...),
			states: make([]incState, len(m.prog.Aggs)),
		}
		m.groups[string(m.keyBuf)] = g
	}
	g.seqs = append(g.seqs, seq)
	for i := range m.prog.Aggs {
		spec := &m.prog.Aggs[i]
		var v stream.Value
		if spec.Col >= 0 {
			v = inputValue(e, spec.Col)
		}
		if !g.states[i].insert(spec, v, seq) {
			m.broken = true
			return
		}
	}
}

// OnEvict implements storage.Observer. The table evicts in arrival
// order, so the evicted element is always its group's oldest live row.
func (m *GroupedAggMaintainer) OnEvict(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	m.encodeGroupKey(e)
	g := m.groups[string(m.keyBuf)]
	if g == nil || len(g.seqs) == 0 {
		// An eviction we never saw inserted: the observer was attached
		// mid-window without a replay. Poison rather than drift.
		m.broken = true
		return
	}
	seq := g.seqs[0]
	g.seqs = g.seqs[1:]
	for i := range m.prog.Aggs {
		spec := &m.prog.Aggs[i]
		var v stream.Value
		if spec.Col >= 0 {
			v = inputValue(e, spec.Col)
		}
		if !g.states[i].evict(spec, v, seq, &m.floatEvicts) {
			m.broken = true
			return
		}
	}
	if len(g.seqs) == 0 {
		delete(m.groups, string(m.keyBuf))
	}
}

// OnTruncate implements storage.Observer: the window was cleared, so
// every group restarts empty.
func (m *GroupedAggMaintainer) OnTruncate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groups = make(map[string]*incGroup)
	m.seq = 0
	m.broken = false
	m.floatEvicts = 0
}

// NeedsResync mirrors AggMaintainer.NeedsResync: enough float inputs
// have been subtracted out that the owner should rebuild the state from
// the live window.
func (m *GroupedAggMaintainer) NeedsResync() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floatEvicts >= resyncFloatEvery
}

// Result builds the grouped aggregate relation — one row per live
// group, ordered by each group's oldest live row (exactly the
// first-seen order a window scan produces) — or nil when the maintainer
// is poisoned. A GROUP BY over an empty window yields no rows, per SQL.
func (m *GroupedAggMaintainer) Result() *Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return nil
	}
	ordered := make([]*incGroup, 0, len(m.groups))
	for _, g := range m.groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seqs[0] < ordered[j].seqs[0] })
	rows := make([][]stream.Value, len(ordered))
	for r, g := range ordered {
		row := make([]stream.Value, len(m.prog.Proj))
		for i, slot := range m.prog.Proj {
			if slot.Key {
				row[i] = g.keys[slot.Idx]
			} else {
				row[i] = g.states[slot.Idx].result(m.prog.Aggs[slot.Idx].Kind)
			}
		}
		rows[r] = row
	}
	return &Relation{Cols: m.prog.Cols, Rows: rows}
}
