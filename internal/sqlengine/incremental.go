package sqlengine

import (
	"sync"

	"gsn/internal/stream"
)

// AggMaintainer incrementally maintains the aggregates of a compiled
// aggregate-only plan over a sliding window, so the dominant
// `SELECT agg(col) FROM wrapper` trigger shape is O(aggregates) per
// evaluation instead of O(window). It implements storage.Observer: the
// table invokes OnInsert/OnEvict/OnTruncate under its own lock and in
// arrival (FIFO) order; Result is called from the trigger workers, so
// the maintainer carries its own mutex.
//
// COUNT/SUM/AVG subtract evicted inputs; MIN/MAX keep the classic
// sliding-window monotonic deque; LAST keeps a FIFO of non-NULL inputs.
// A value the aggregate cannot digest (non-numeric SUM input,
// incomparable MIN operands) poisons the maintainer: Result returns nil
// from then on and the caller falls back to full plan execution, which
// reports the error through the normal path.
type AggMaintainer struct {
	specs []IncAggSpec
	cols  []Column

	mu     sync.Mutex
	states []incState
	broken bool
	seq    uint64 // next insert sequence number
	headSq uint64 // sequence number of the next eviction (FIFO)

	// floatEvicts counts evicted float SUM/AVG inputs since the last
	// rebuild. Subtract-on-evict float maintenance accumulates rounding
	// error (and can be corrupted outright by catastrophic absorption
	// when magnitudes differ wildly), so after resyncFloatEvery such
	// evictions NeedsResync reports true and the owner rebuilds the
	// state from the live window (storage.Table.SetObserver replays it).
	floatEvicts uint64
}

// resyncFloatEvery bounds float SUM/AVG drift: one O(window) rebuild
// per this many evicted float inputs keeps amortised maintenance O(1).
const resyncFloatEvery = 65536

// seqValue is one deque entry: the arrival sequence of the element it
// came from, and the aggregate input value.
type seqValue struct {
	seq uint64
	v   stream.Value
}

// incState is the running state of one aggregate column.
type incState struct {
	count  int64 // non-NULL inputs (all rows for COUNT(*))
	intSum int64
	fSum   float64
	nFloat int64
	deque  []seqValue // MIN/MAX monotonic deque, or LAST FIFO
}

// NewAggMaintainer builds a maintainer for a plan's incremental program
// (Plan.Incremental).
func NewAggMaintainer(specs []IncAggSpec) *AggMaintainer {
	cols := make([]Column, len(specs))
	for i, s := range specs {
		cols[i] = s.Out
	}
	return &AggMaintainer{specs: specs, cols: cols, states: make([]incState, len(specs))}
}

// OnInsert implements storage.Observer.
func (m *AggMaintainer) OnInsert(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	seq := m.seq
	m.seq++
	for i := range m.specs {
		spec := &m.specs[i]
		st := &m.states[i]
		if spec.Col < 0 { // COUNT(*)
			st.count++
			continue
		}
		v := inputValue(e, spec.Col)
		if v == nil {
			continue // SQL aggregates ignore NULLs
		}
		st.count++
		switch spec.Kind {
		case IncSum, IncAvg:
			switch x := v.(type) {
			case int64:
				st.intSum += x
			case float64:
				st.fSum += x
				st.nFloat++
			default:
				m.broken = true
				return
			}
		case IncMin, IncMax:
			want := -1 // MIN keeps an increasing deque: pop backs >= v
			if spec.Kind == IncMax {
				want = 1 // MAX keeps a decreasing deque: pop backs <= v
			}
			for len(st.deque) > 0 {
				c, known, err := compare(st.deque[len(st.deque)-1].v, v)
				if err != nil || !known {
					m.broken = true
					return
				}
				if c*want > 0 {
					break
				}
				st.deque = st.deque[:len(st.deque)-1]
			}
			st.deque = append(st.deque, seqValue{seq: seq, v: v})
		case IncLast:
			st.deque = append(st.deque, seqValue{seq: seq, v: v})
		}
	}
}

// OnEvict implements storage.Observer. Eviction order is the table's
// arrival order, so the evicted element always carries the sequence
// number at the head.
func (m *AggMaintainer) OnEvict(e stream.Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return
	}
	seq := m.headSq
	m.headSq++
	for i := range m.specs {
		spec := &m.specs[i]
		st := &m.states[i]
		if spec.Col < 0 {
			st.count--
			continue
		}
		v := inputValue(e, spec.Col)
		if v == nil {
			continue
		}
		st.count--
		switch spec.Kind {
		case IncSum, IncAvg:
			switch x := v.(type) {
			case int64:
				st.intSum -= x
			case float64:
				st.fSum -= x
				st.nFloat--
				m.floatEvicts++
			default:
				m.broken = true
				return
			}
		case IncMin, IncMax, IncLast:
			if len(st.deque) > 0 && st.deque[0].seq == seq {
				st.deque = st.deque[1:]
			}
		}
	}
}

// OnTruncate implements storage.Observer: the window was cleared, so
// every running aggregate restarts empty.
func (m *AggMaintainer) OnTruncate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.states {
		m.states[i] = incState{}
	}
	m.seq = 0
	m.headSq = 0
	m.broken = false
	m.floatEvicts = 0
}

// NeedsResync reports that enough float inputs have been subtracted
// out that accumulated rounding error warrants rebuilding the state
// from the live window (re-attach with SetObserver, which replays it).
func (m *AggMaintainer) NeedsResync() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floatEvicts >= resyncFloatEvery
}

// inputValue extracts the aggregate input column from an element,
// mapping the implicit TIMED column (index == element length) to the
// timestamp.
func inputValue(e stream.Element, col int) stream.Value {
	if col == e.Len() {
		return int64(e.Timestamp())
	}
	return e.Value(col)
}

// Result builds the single-row aggregate relation, or nil when the
// maintainer is poisoned and the caller must fall back to full
// execution. Empty-window semantics match aggState: COUNT is 0, the
// rest are NULL.
func (m *AggMaintainer) Result() *Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return nil
	}
	row := make([]stream.Value, len(m.specs))
	for i := range m.specs {
		spec := &m.specs[i]
		st := &m.states[i]
		switch spec.Kind {
		case IncCount:
			row[i] = st.count
		case IncSum:
			if st.count == 0 {
				row[i] = nil
			} else if st.nFloat == 0 {
				row[i] = st.intSum
			} else {
				row[i] = float64(st.intSum) + st.fSum
			}
		case IncAvg:
			if st.count == 0 {
				row[i] = nil
			} else {
				row[i] = (float64(st.intSum) + st.fSum) / float64(st.count)
			}
		case IncMin, IncMax:
			if len(st.deque) > 0 {
				row[i] = st.deque[0].v
			}
		case IncLast:
			if len(st.deque) > 0 {
				row[i] = st.deque[len(st.deque)-1].v
			}
		}
	}
	return &Relation{Cols: m.cols, Rows: [][]stream.Value{row}}
}
