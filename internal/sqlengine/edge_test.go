package sqlengine

import (
	"fmt"
	"strings"
	"testing"

	"gsn/internal/sqlparser"
	"gsn/internal/stream"
)

func TestSubqueryDepthGuard(t *testing.T) {
	// Build a query nested beyond the depth limit.
	inner := "SELECT 1"
	for i := 0; i < 40; i++ {
		inner = "SELECT (" + inner + ")"
	}
	_, err := ExecuteSQL(inner, MapCatalog{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("deep nesting error = %v", err)
	}
}

func TestUncorrelatedSubqueryMemoised(t *testing.T) {
	// The same scalar subquery referenced per row must execute once:
	// observable through a catalog that counts resolutions.
	counting := &countingCatalog{inner: testCatalog()}
	rel, err := ExecuteSQL(
		"SELECT id FROM readings WHERE id <= (SELECT max(id) FROM sensors)",
		counting, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) == 0 {
		t.Fatal("no rows")
	}
	if counting.counts["SENSORS"] != 1 {
		t.Errorf("subquery table resolved %d times, want 1 (memoised)", counting.counts["SENSORS"])
	}
}

type countingCatalog struct {
	inner  Catalog
	counts map[string]int
}

func (c *countingCatalog) Relation(name string) (*Relation, error) {
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	c.counts[stream.CanonicalName(name)]++
	return c.inner.Relation(name)
}

func TestCorrelatedSubqueryNotMemoised(t *testing.T) {
	counting := &countingCatalog{inner: testCatalog()}
	rel, err := ExecuteSQL(
		`SELECT s.id FROM sensors AS s WHERE EXISTS (SELECT 1 FROM readings AS r WHERE r.id = s.id)`,
		counting, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %v", rel.Rows)
	}
	if counting.counts["READINGS"] < 4 {
		t.Errorf("correlated subquery resolved READINGS %d times, want once per outer row", counting.counts["READINGS"])
	}
}

func TestCompoundOrderByMustUseOutputColumns(t *testing.T) {
	// In a compound result ORDER BY can only reference output columns.
	_, err := ExecuteSQL(
		"SELECT id FROM readings UNION SELECT id FROM sensors ORDER BY type",
		testCatalog(), Options{})
	if err == nil {
		t.Error("ORDER BY over non-output column of a compound accepted")
	}
	rel, err := ExecuteSQL(
		"SELECT id FROM readings UNION SELECT id FROM sensors ORDER BY 1 DESC LIMIT 1",
		testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(9) {
		t.Errorf("ordinal compound order = %v", rel.Rows)
	}
}

func TestLimitFromExpression(t *testing.T) {
	rel := mustQuery(t, "SELECT id FROM readings LIMIT 1 + 2")
	if len(rel.Rows) != 3 {
		t.Errorf("expression LIMIT = %d rows", len(rel.Rows))
	}
}

func TestIntersectExceptAllMultiset(t *testing.T) {
	a := NewRelation("v")
	for _, v := range []int64{1, 1, 1, 2} {
		a.AddRow(v)
	}
	b := NewRelation("v")
	for _, v := range []int64{1, 1, 3} {
		b.AddRow(v)
	}
	cat := MapCatalog{"A": a, "B": b}
	inter, err := ExecuteSQL("SELECT v FROM a INTERSECT ALL SELECT v FROM b", cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(inter.Rows) != 2 { // min(3,2) copies of 1
		t.Errorf("INTERSECT ALL = %v", inter.Rows)
	}
	except, err := ExecuteSQL("SELECT v FROM a EXCEPT ALL SELECT v FROM b", cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(except.Rows) != 2 { // 3-2 copies of 1, plus the 2
		t.Errorf("EXCEPT ALL = %v", except.Rows)
	}
}

func TestHavingOverUngroupedAggregate(t *testing.T) {
	rel := mustQuery(t, "SELECT count(*) FROM readings HAVING count(*) > 3")
	if len(rel.Rows) != 1 {
		t.Errorf("having pass = %v", rel.Rows)
	}
	rel2 := mustQuery(t, "SELECT count(*) FROM readings HAVING count(*) > 100")
	if len(rel2.Rows) != 0 {
		t.Errorf("having filter = %v", rel2.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	rel := mustQuery(t, "SELECT id % 2 AS parity, count(*) FROM readings GROUP BY id % 2 ORDER BY parity")
	if len(rel.Rows) != 2 {
		t.Fatalf("rows = %v", rel.Rows)
	}
	if rel.Rows[0][1] != int64(3) || rel.Rows[1][1] != int64(3) {
		t.Errorf("parity counts = %v", rel.Rows)
	}
}

func TestSelectDistinctStar(t *testing.T) {
	rel := NewRelation("v")
	rel.AddRow(int64(1))
	rel.AddRow(int64(1))
	rel.AddRow(int64(2))
	cat := MapCatalog{"T": rel}
	out, err := ExecuteSQL("SELECT DISTINCT * FROM t", cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Errorf("distinct star = %v", out.Rows)
	}
}

func TestConcatOperator(t *testing.T) {
	rel := mustQuery(t, "SELECT type || '-' || id FROM readings WHERE id = 1")
	if rel.Rows[0][0] != "temperature-1" {
		t.Errorf("concat = %v", rel.Rows[0][0])
	}
	relNull := mustQuery(t, "SELECT 'a' || NULL")
	if relNull.Rows[0][0] != nil {
		t.Errorf("concat with NULL = %v", relNull.Rows[0][0])
	}
}

func TestIsFuncClassifiers(t *testing.T) {
	if !IsAggregateFunc("AVG") || IsAggregateFunc("UPPER") {
		t.Error("aggregate classification broken")
	}
	if !IsScalarFunc("UPPER") || IsScalarFunc("AVG") {
		t.Error("scalar classification broken")
	}
}

func TestParenthesisedJoinTree(t *testing.T) {
	rel := mustQuery(t, `SELECT count(*) FROM (readings AS r JOIN sensors AS s ON r.id = s.id)`)
	if rel.Rows[0][0] != int64(3) {
		t.Errorf("paren join = %v", rel.Rows[0][0])
	}
}

func TestSimpleCaseWithOperand(t *testing.T) {
	rel := mustQuery(t, `SELECT CASE type WHEN 'light' THEN 1 WHEN 'humidity' THEN 2 ELSE 0 END AS c
		FROM readings ORDER BY id`)
	want := []int64{0, 0, 1, 1, 0, 2}
	for i, w := range want {
		if rel.Rows[i][0] != w {
			t.Errorf("row %d case = %v, want %d", i, rel.Rows[i][0], w)
		}
	}
}

func TestMaxRowsOnProjection(t *testing.T) {
	rel := NewRelation("v")
	for i := 0; i < 100; i++ {
		rel.AddRow(int64(i))
	}
	cat := MapCatalog{"T": rel}
	if _, err := ExecuteSQL("SELECT v FROM t", cat, Options{MaxRows: 50}); err == nil {
		t.Error("projection above MaxRows accepted")
	}
}

func TestParserASTStringCoverage(t *testing.T) {
	// Exercise every AST String method through canonical rendering.
	queries := []string{
		"SELECT a FROM t RIGHT JOIN u ON t.x = u.x",
		"SELECT CASE x WHEN 1 THEN 'a' END FROM t",
		"SELECT a FROM (SELECT b FROM u) AS d",
		"SELECT x NOT BETWEEN 1 AND 2 FROM t",
		"SELECT NOT EXISTS (SELECT 1 FROM u) FROM t",
		"SELECT x NOT LIKE 'a%' FROM t",
		"SELECT x NOT IN (SELECT y FROM u) FROM t",
		"SELECT CAST(x AS binary) FROM t",
		"SELECT -x FROM t",
		"SELECT 1.5e10, TRUE, FALSE, NULL",
	}
	for _, q := range queries {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		printed := stmt.String()
		if _, err := sqlparser.Parse(printed); err != nil {
			t.Errorf("rendered %q does not reparse: %v", printed, err)
		}
	}
}

func TestTemporalAndDigestFunctions(t *testing.T) {
	// 2026-06-11T12:34:56Z in milliseconds.
	ms := int64(1781181296000)
	cases := map[string]stream.Value{
		"hour(" + itoa(ms) + ")":   nil, // filled below from time pkg
		"minute(" + itoa(ms) + ")": int64(34),
		"second(" + itoa(ms) + ")": int64(56),
		"md5('abc')":               "900150983cd24fb0d6963f7d28e17f72",
		"hex('AB')":                "4142",
		"md5(NULL)":                nil,
		"hex(NULL)":                nil,
		"hour(NULL)":               nil,
	}
	// HOUR depends only on UTC here.
	cases["hour("+itoa(ms)+")"] = int64(12)
	for expr, want := range cases {
		got := evalConst(t, expr)
		if !stream.ValuesEqual(got, want) && !(got == nil && want == nil) {
			t.Errorf("%s = %v (%T), want %v", expr, got, got, want)
		}
	}
	out := evalConst(t, "from_millis("+itoa(ms)+")")
	s, ok := out.(string)
	if !ok || !strings.HasPrefix(s, "2026-06-11T12:34:56") {
		t.Errorf("from_millis = %v", out)
	}
	for _, bad := range []string{"hour('x')", "md5(1)", "from_millis('y')"} {
		if _, err := ExecuteSQL("SELECT "+bad, MapCatalog{}, Options{}); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func itoa(n int64) string { return fmt.Sprintf("%d", n) }
