package sqlengine

import (
	"fmt"
	"math"
	"testing"

	"gsn/internal/sqlparser"
)

// whereOf parses a SELECT and hands back its WHERE expression.
func whereOf(t *testing.T, cond string) sqlparser.Expr {
	t.Helper()
	stmt, err := sqlparser.Parse("SELECT * FROM readings WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return stmt.Where
}

func TestTimeBounds(t *testing.T) {
	const unb = math.MinInt64 // marker: expected lo unbounded
	const unbHi = math.MaxInt64
	cases := []struct {
		cond   string
		lo, hi int64
		ok     bool
	}{
		{"timed BETWEEN 10 AND 20", 10, 20, true},
		{"timed >= 5", 5, unbHi, true},
		{"timed > 5", 6, unbHi, true},
		{"timed <= 99", unb, 99, true},
		{"timed < 99", unb, 98, true},
		{"timed = 42", 42, 42, true},
		// Flipped spellings normalise the operator.
		{"100 <= timed", 100, unbHi, true},
		{"100 > timed", unb, 99, true},
		// Conjuncts combine; the tightest bounds win.
		{"timed >= 10 AND timed <= 20 AND timed >= 12", 12, 20, true},
		{"timed BETWEEN 0 AND 50 AND value > 3", 0, 50, true},
		{"readings.timed BETWEEN 1 AND 2", 1, 2, true},
		// Unary signs on the literal.
		{"timed >= -5", -5, unbHi, true},
		{"timed <= +7", unb, 7, true},
		// Anything under OR or NOT must not constrain the interval.
		{"timed >= 10 OR value = 1", unb, unbHi, false},
		{"timed NOT BETWEEN 10 AND 20", unb, unbHi, false},
		{"value > 3", unb, unbHi, false},
		// A different table's TIMED is not ours.
		{"other.timed BETWEEN 1 AND 2", unb, unbHi, false},
		// Non-integer bounds are ignored.
		{"timed >= 'abc'", unb, unbHi, false},
	}
	for _, tc := range cases {
		t.Run(tc.cond, func(t *testing.T) {
			lo, hi, ok := TimeBounds(whereOf(t, tc.cond), "readings")
			if ok != tc.ok || lo != tc.lo || hi != tc.hi {
				t.Fatalf("TimeBounds = (%d, %d, %v), want (%d, %d, %v)",
					lo, hi, ok, tc.lo, tc.hi, tc.ok)
			}
		})
	}
}

// TestTimeBoundsAliasQualifier: bounds qualified with the FROM alias
// count; the base table name does not resolve once aliased away — it
// is simply ignored, which only widens the interval.
func TestTimeBoundsAliasQualifier(t *testing.T) {
	lo, hi, ok := TimeBounds(whereOf(t, "r.timed BETWEEN 3 AND 4"), "r")
	if !ok || lo != 3 || hi != 4 {
		t.Fatalf("aliased bounds = (%d, %d, %v)", lo, hi, ok)
	}
	_, _, ok = TimeBounds(whereOf(t, "readings.timed BETWEEN 3 AND 4"), "r")
	if ok {
		t.Fatal("qualifier not matching the alias must not constrain the scan")
	}
}

// rangeTestCatalog wraps the fixture catalog with a RelationRange that
// records calls and serves a filtered READINGS — including extra rows
// the base relation does not have, proving the executor both routes
// through the pushdown and re-applies the full WHERE on its result.
type rangeTestCatalog struct {
	MapCatalog
	calls []string
}

func (c *rangeTestCatalog) RelationRange(name string, lo, hi int64) (*Relation, error) {
	c.calls = append(c.calls, fmt.Sprintf("%s[%d,%d]", name, lo, hi))
	base, err := c.MapCatalog.Relation(name)
	if err != nil {
		return nil, err
	}
	out := NewRelation("id", "type", "value", "timed")
	ti := 3
	for _, row := range base.Rows {
		if ts, ok := row[ti].(int64); ok && ts >= lo && ts <= hi {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func TestRangePushdownRouting(t *testing.T) {
	cat := &rangeTestCatalog{MapCatalog: testCatalog()}
	rel, err := ExecuteSQL(
		"SELECT id FROM readings WHERE timed BETWEEN 2000 AND 3000 AND type = 'light'",
		cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.calls) != 1 || cat.calls[0] != "readings[2000,3000]" {
		t.Fatalf("pushdown calls = %v, want one readings[2000,3000]", cat.calls)
	}
	// Rows 2..4 are in the interval; the re-applied WHERE keeps the two
	// light readings only.
	if len(rel.Rows) != 2 || rel.Rows[0][0] != int64(3) || rel.Rows[1][0] != int64(4) {
		t.Fatalf("pushdown result = %v", rel.Rows)
	}
}

func TestRangePushdownNotUsedWithoutBounds(t *testing.T) {
	cat := &rangeTestCatalog{MapCatalog: testCatalog()}
	rel, err := ExecuteSQL("SELECT id FROM readings WHERE type = 'light'", cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.calls) != 0 {
		t.Fatalf("unexpected pushdown calls %v for an unbounded WHERE", cat.calls)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("fallback result = %v", rel.Rows)
	}
}

// TestRangePushdownEquivalence: every bounded query must return the
// same rows with and without the pushdown in play.
func TestRangePushdownEquivalence(t *testing.T) {
	queries := []string{
		"SELECT id FROM readings WHERE timed BETWEEN 1500 AND 3500",
		"SELECT id FROM readings WHERE timed >= 2500",
		"SELECT id, value FROM readings WHERE timed < 3000 AND type = 'temperature'",
		"SELECT COUNT(*) FROM readings WHERE timed BETWEEN 0 AND 2500",
		"SELECT id FROM readings r WHERE r.timed BETWEEN 2000 AND 4000 ORDER BY id DESC",
	}
	for _, q := range queries {
		pushed, err := ExecuteSQL(q, &rangeTestCatalog{MapCatalog: testCatalog()}, Options{})
		if err != nil {
			t.Fatalf("%s (pushdown): %v", q, err)
		}
		plain, err := ExecuteSQL(q, testCatalog(), Options{})
		if err != nil {
			t.Fatalf("%s (plain): %v", q, err)
		}
		if fmt.Sprint(pushed.Rows) != fmt.Sprint(plain.Rows) {
			t.Fatalf("%s: pushdown rows %v != plain rows %v", q, pushed.Rows, plain.Rows)
		}
	}
}
