package sqlengine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gsn/internal/sqlparser"
	"gsn/internal/stream"
)

// Options tunes query execution. The zero value is ready to use.
type Options struct {
	// Clock supplies NOW(); nil uses the system clock.
	Clock stream.Clock
	// DisableHashJoin forces nested-loop joins (ablation knob; see
	// DESIGN.md §5).
	DisableHashJoin bool
	// MaxRows bounds intermediate and final result sizes to catch
	// runaway cross joins. 0 means the 1M default.
	MaxRows int
}

const defaultMaxRows = 1_000_000

// Execute runs a parsed statement against the catalog.
func Execute(stmt *sqlparser.SelectStatement, cat Catalog, opts Options) (*Relation, error) {
	if opts.Clock == nil {
		opts.Clock = stream.SystemClock()
	}
	if opts.MaxRows <= 0 {
		opts.MaxRows = defaultMaxRows
	}
	ev := &evaluator{cat: cat, opts: opts, clock: opts.Clock}
	return ev.execSelect(stmt, nil)
}

// ExecuteSQL parses (with the shared statement cache) and runs a query.
func ExecuteSQL(sql string, cat Catalog, opts Options) (*Relation, error) {
	stmt, err := defaultStmtCache.Get(sql)
	if err != nil {
		return nil, err
	}
	return Execute(stmt, cat, opts)
}

// ParseNoCache parses a statement bypassing the shared cache (ablation
// knob: the paper attributes part of Figure 4's latency to query
// compilation cost).
func ParseNoCache(sql string) (*sqlparser.SelectStatement, error) {
	return sqlparser.Parse(sql)
}

// StatementCache memoises parsed statements by SQL text.
type StatementCache struct {
	mu  sync.Mutex
	m   map[string]*sqlparser.SelectStatement
	cap int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewStatementCache creates a cache bounded to capacity entries.
func NewStatementCache(capacity int) *StatementCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &StatementCache{m: make(map[string]*sqlparser.SelectStatement), cap: capacity}
}

// Get returns the cached parse of sql, parsing on miss.
func (c *StatementCache) Get(sql string) (*sqlparser.SelectStatement, error) {
	c.mu.Lock()
	if stmt, ok := c.m[sql]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return stmt, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.m) >= c.cap {
		// Simple full reset keeps the cache bounded without LRU
		// bookkeeping; workloads with a stable query set never hit it.
		c.m = make(map[string]*sqlparser.SelectStatement)
	}
	c.m[sql] = stmt
	c.mu.Unlock()
	return stmt, nil
}

// Len reports the number of cached statements.
func (c *StatementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// StatementCacheStats reports a cache's hit/miss counters and size.
type StatementCacheStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

// Stats snapshots the cache counters.
func (c *StatementCache) Stats() StatementCacheStats {
	return StatementCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: c.Len()}
}

var defaultStmtCache = NewStatementCache(4096)

// ParseCached parses sql through the shared statement cache (the same
// cache ExecuteSQL uses), so callers that need the AST — volatility
// checks, compilation — pay for parsing once per distinct text.
func ParseCached(sql string) (*sqlparser.SelectStatement, error) {
	return defaultStmtCache.Get(sql)
}

// DefaultStatementCacheStats reports the shared statement cache's
// counters for the metrics endpoint.
func DefaultStatementCacheStats() StatementCacheStats {
	return defaultStmtCache.Stats()
}

// execSelect runs a (possibly compound) statement.
func (ev *evaluator) execSelect(stmt *sqlparser.SelectStatement, outer *scope) (*Relation, error) {
	rel, sortKeys, err := ev.execSimple(stmt, outer)
	if err != nil {
		return nil, err
	}
	if stmt.Compound != nil {
		for c := stmt.Compound; c != nil; {
			right, _, err := ev.execSimple(c.Right, outer)
			if err != nil {
				return nil, err
			}
			rel, err = setOp(c.Op, c.All, rel, right)
			if err != nil {
				return nil, err
			}
			c = c.Right.Compound
		}
		if len(stmt.OrderBy) > 0 {
			sortKeys, err = ev.outputOnlySortKeys(rel, stmt.OrderBy)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(stmt.OrderBy) > 0 && sortKeys != nil {
		sortRelation(rel, sortKeys, stmt.OrderBy)
	}
	if err := ev.applyLimitOffset(rel, stmt, outer); err != nil {
		return nil, err
	}
	return rel, nil
}

// simplePlan is the per-statement analysis of one SELECT core against a
// fixed input column layout: the projection slots, output columns,
// ORDER BY resolution and aggregate inventory. It depends only on the
// statement and the input columns, so the container compiles it once
// per deployed sensor (see Compile) instead of re-deriving it on every
// trigger; the ad-hoc path builds it per execution.
type simplePlan struct {
	stmt         *sqlparser.SelectStatement
	proj         []projItem
	outCols      []Column
	orderPlans   []orderPlan
	aggs         []*sqlparser.FuncCall
	grouped      bool
	needSortKeys bool
}

// analyzeSimple plans one SELECT core (no FROM resolution — srcCols is
// the already-built input layout).
func analyzeSimple(stmt *sqlparser.SelectStatement, srcCols []Column) (*simplePlan, error) {
	// Aggregates are illegal in WHERE.
	var whereAggs []*sqlparser.FuncCall
	collectAggregates(stmt.Where, &whereAggs)
	if len(whereAggs) > 0 {
		return nil, fmt.Errorf("sqlengine: aggregate %s not allowed in WHERE", whereAggs[0].Name)
	}

	sp := &simplePlan{stmt: stmt}
	for _, col := range stmt.Columns {
		if !col.Star {
			collectAggregates(col.Expr, &sp.aggs)
		}
	}
	collectAggregates(stmt.Having, &sp.aggs)
	sp.needSortKeys = len(stmt.OrderBy) > 0 && stmt.Compound == nil
	if sp.needSortKeys {
		for _, o := range stmt.OrderBy {
			collectAggregates(o.Expr, &sp.aggs)
		}
	}
	sp.grouped = len(stmt.GroupBy) > 0 || len(sp.aggs) > 0
	if stmt.Having != nil && !sp.grouped {
		return nil, fmt.Errorf("sqlengine: HAVING requires GROUP BY or aggregates")
	}

	var err error
	sp.proj, sp.outCols, err = buildProjection(stmt.Columns, srcCols)
	if err != nil {
		return nil, err
	}
	if sp.needSortKeys {
		sp.orderPlans, err = planOrderBy(stmt.OrderBy, sp.outCols)
		if err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// execSimple runs one SELECT core (no compound). It returns the
// projected relation and, when the statement has ORDER BY and no
// compound, per-row sort keys evaluated in row context.
func (ev *evaluator) execSimple(stmt *sqlparser.SelectStatement, outer *scope) (*Relation, [][]stream.Value, error) {
	src, err := ev.buildFromPushdown(stmt, outer)
	if err != nil {
		return nil, nil, err
	}
	sp, err := analyzeSimple(stmt, src.Cols)
	if err != nil {
		return nil, nil, err
	}
	return ev.runSimple(sp, src, outer)
}

// filterWhere applies the statement's WHERE predicate to the input
// rows, returning the surviving rows (the input slice when there is no
// predicate). Shared by the local execution path and the partial
// rollup a federation worker computes (WHERE is node-side work).
func (ev *evaluator) filterWhere(sp *simplePlan, src *Relation, outer *scope) ([][]stream.Value, error) {
	rows := src.Rows
	if sp.stmt.Where == nil {
		return rows, nil
	}
	kept := rows[:0:0]
	for _, row := range rows {
		sc := &scope{rel: src, row: row, parent: outer}
		v, err := ev.eval(sp.stmt.Where, sc)
		if err != nil {
			return nil, err
		}
		if t, known := truth(v); known && t {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

// projector materialises projected output rows (and their sort keys)
// for one SELECT core. runSimple and the partial-merge coordinator
// share it, so a federated finalize is byte-identical to a local one.
type projector struct {
	ev       *evaluator
	sp       *simplePlan
	out      *Relation
	sortKeys [][]stream.Value
}

func newProjector(ev *evaluator, sp *simplePlan) *projector {
	return &projector{ev: ev, sp: sp, out: &Relation{Cols: sp.outCols}}
}

func (p *projector) project(sc *scope) error {
	ev, sp := p.ev, p.sp
	row := make([]stream.Value, 0, len(sp.outCols))
	for _, item := range sp.proj {
		if item.star {
			for _, i := range item.starIdx {
				row = append(row, sc.row[i])
			}
			continue
		}
		v, err := ev.eval(item.expr, sc)
		if err != nil {
			return err
		}
		row = append(row, v)
	}
	p.out.Rows = append(p.out.Rows, row)
	if len(p.out.Rows) > ev.opts.MaxRows {
		return fmt.Errorf("sqlengine: result exceeds %d rows", ev.opts.MaxRows)
	}
	if sp.needSortKeys {
		keys := make([]stream.Value, len(sp.orderPlans))
		for i, op := range sp.orderPlans {
			if op.outputIdx >= 0 {
				keys[i] = row[op.outputIdx]
				continue
			}
			v, err := ev.eval(op.expr, sc)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		p.sortKeys = append(p.sortKeys, keys)
	}
	return nil
}

// finish applies DISTINCT and drops sort keys the caller did not ask
// for, returning the projected relation and keys.
func (p *projector) finish() (*Relation, [][]stream.Value) {
	out, sortKeys := p.out, p.sortKeys
	if p.sp.stmt.Distinct {
		out.Rows, sortKeys = dedupeRows(out.Rows, sortKeys)
	}
	if !p.sp.needSortKeys {
		sortKeys = nil
	}
	return out, sortKeys
}

// runSimple executes an analyzed SELECT core over its input relation:
// WHERE filter, projection or grouped aggregation, DISTINCT.
func (ev *evaluator) runSimple(sp *simplePlan, src *Relation, outer *scope) (*Relation, [][]stream.Value, error) {
	rows, err := ev.filterWhere(sp, src, outer)
	if err != nil {
		return nil, nil, err
	}

	pr := newProjector(ev, sp)
	if !sp.grouped {
		for _, row := range rows {
			sc := &scope{rel: src, row: row, parent: outer}
			if err := pr.project(sc); err != nil {
				return nil, nil, err
			}
		}
	} else {
		if err := ev.execGrouped(sp.stmt, src, rows, sp.aggs, outer, pr.project); err != nil {
			return nil, nil, err
		}
	}

	out, sortKeys := pr.finish()
	return out, sortKeys, nil
}

// group is one GROUP BY bucket.
type group struct {
	rep    []stream.Value
	states []*aggState
}

// newGroup allocates a bucket with fresh accumulator states.
func newGroup(rep []stream.Value, aggs []*sqlparser.FuncCall) *group {
	g := &group{rep: rep, states: make([]*aggState, len(aggs))}
	for i, a := range aggs {
		g.states[i] = newAggState(aggKinds[a.Name], a.Distinct)
	}
	return g
}

// checkAggArity validates aggregate call shapes once per execution.
func checkAggArity(aggs []*sqlparser.FuncCall) error {
	for _, a := range aggs {
		if !a.CountStar && len(a.Args) != 1 {
			return fmt.Errorf("sqlengine: aggregate %s takes exactly one argument", a.Name)
		}
	}
	return nil
}

// foldGroups buckets the filtered rows by their GROUP BY key and folds
// each row into the per-group accumulator states. It performs no
// empty-input synthesis — the caller decides whether an aggregate-only
// statement over zero rows produces its one row (locally: always;
// on a federation worker: never, the coordinator synthesises after the
// merge so an empty partition cannot fabricate a global group).
func (ev *evaluator) foldGroups(stmt *sqlparser.SelectStatement, src *Relation,
	rows [][]stream.Value, aggs []*sqlparser.FuncCall, outer *scope) (map[string]*group, []string, error) {

	if err := checkAggArity(aggs); err != nil {
		return nil, nil, err
	}

	groups := make(map[string]*group)
	var order []string // deterministic output: first-seen order
	for _, row := range rows {
		sc := &scope{rel: src, row: row, parent: outer}
		var key string
		if len(stmt.GroupBy) > 0 {
			kv := make([]stream.Value, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				v, err := ev.eval(g, sc)
				if err != nil {
					return nil, nil, err
				}
				kv[i] = v
			}
			key = encodeRowKey(kv)
		}
		g, ok := groups[key]
		if !ok {
			g = newGroup(row, aggs)
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range aggs {
			if a.CountStar {
				if err := g.states[i].add(int64(1)); err != nil {
					return nil, nil, err
				}
				continue
			}
			v, err := ev.eval(a.Args[0], sc)
			if err != nil {
				return nil, nil, err
			}
			if err := g.states[i].add(v); err != nil {
				return nil, nil, err
			}
		}
	}
	return groups, order, nil
}

// projectGroups finalises folded groups in first-seen order: aggregate
// results published into the evaluator's aggregate scope, HAVING in
// representative-row context, then projection.
func (ev *evaluator) projectGroups(stmt *sqlparser.SelectStatement, src *Relation,
	groups map[string]*group, order []string, aggs []*sqlparser.FuncCall, outer *scope,
	project func(*scope) error) error {

	for _, key := range order {
		g := groups[key]
		ev.aggValues = make(map[*sqlparser.FuncCall]stream.Value, len(aggs))
		for i, a := range aggs {
			ev.aggValues[a] = g.states[i].result()
		}
		sc := &scope{rel: src, row: g.rep, parent: outer}
		if stmt.Having != nil {
			v, err := ev.eval(stmt.Having, sc)
			if err != nil {
				ev.aggValues = nil
				return err
			}
			if t, known := truth(v); !known || !t {
				ev.aggValues = nil
				continue
			}
		}
		if err := project(sc); err != nil {
			ev.aggValues = nil
			return err
		}
		ev.aggValues = nil
	}
	return nil
}

func (ev *evaluator) execGrouped(stmt *sqlparser.SelectStatement, src *Relation,
	rows [][]stream.Value, aggs []*sqlparser.FuncCall, outer *scope,
	project func(*scope) error) error {

	groups, order, err := ev.foldGroups(stmt, src, rows, aggs, outer)
	if err != nil {
		return err
	}

	// Aggregates without GROUP BY over an empty input still produce one
	// row (COUNT(*) = 0 etc.).
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		groups[""] = newGroup(make([]stream.Value, len(src.Cols)), aggs)
		order = append(order, "")
	}

	return ev.projectGroups(stmt, src, groups, order, aggs, outer, project)
}

// projItem is one projection slot: either a pre-resolved set of source
// column indices (star expansion) or an expression.
type projItem struct {
	star    bool
	starIdx []int
	expr    sqlparser.Expr
}

func buildProjection(cols []sqlparser.SelectColumn, srcCols []Column) ([]projItem, []Column, error) {
	var items []projItem
	var out []Column
	for _, c := range cols {
		if c.Star {
			qual := stream.CanonicalName(c.StarTable)
			var idxs []int
			for i, sc := range srcCols {
				if qual == "" || sc.Table == qual {
					idxs = append(idxs, i)
					out = append(out, sc)
				}
			}
			if qual != "" && len(idxs) == 0 {
				return nil, nil, fmt.Errorf("sqlengine: unknown table %q in %s.*", c.StarTable, c.StarTable)
			}
			items = append(items, projItem{star: true, starIdx: idxs})
			continue
		}
		name := ""
		table := ""
		switch {
		case c.Alias != "":
			name = c.Alias
		default:
			if ref, ok := c.Expr.(*sqlparser.ColumnRef); ok {
				name = ref.Name
				table = ref.Table
			} else {
				name = c.Expr.String()
			}
		}
		items = append(items, projItem{expr: c.Expr})
		out = append(out, Column{Table: stream.CanonicalName(table), Name: stream.CanonicalName(name)})
	}
	return items, out, nil
}

// orderPlan resolves one ORDER BY item: an output column index, or an
// expression evaluated in row context.
type orderPlan struct {
	outputIdx int
	expr      sqlparser.Expr
}

func planOrderBy(items []sqlparser.OrderItem, outCols []Column) ([]orderPlan, error) {
	plans := make([]orderPlan, len(items))
	for i, item := range items {
		plans[i] = orderPlan{outputIdx: -1, expr: item.Expr}
		// Ordinal: ORDER BY 2.
		if lit, ok := item.Expr.(*sqlparser.Literal); ok {
			if n, ok := lit.Value.(int64); ok {
				if n < 1 || int(n) > len(outCols) {
					return nil, fmt.Errorf("sqlengine: ORDER BY position %d out of range", n)
				}
				plans[i].outputIdx = int(n) - 1
				continue
			}
		}
		// Output name/alias match (unqualified, unique).
		if ref, ok := item.Expr.(*sqlparser.ColumnRef); ok && ref.Table == "" {
			name := stream.CanonicalName(ref.Name)
			match := -1
			dup := false
			for j, c := range outCols {
				if c.Name == name {
					if match >= 0 {
						dup = true
					}
					match = j
				}
			}
			if match >= 0 && !dup {
				plans[i].outputIdx = match
			}
		}
	}
	return plans, nil
}

// outputOnlySortKeys builds sort keys for compound results, where ORDER
// BY may only name output columns or ordinals.
func (ev *evaluator) outputOnlySortKeys(rel *Relation, items []sqlparser.OrderItem) ([][]stream.Value, error) {
	plans, err := planOrderBy(items, rel.Cols)
	if err != nil {
		return nil, err
	}
	for i, p := range plans {
		if p.outputIdx < 0 {
			return nil, fmt.Errorf("sqlengine: ORDER BY item %d must reference an output column of the compound result", i+1)
		}
	}
	keys := make([][]stream.Value, len(rel.Rows))
	for r, row := range rel.Rows {
		ks := make([]stream.Value, len(plans))
		for i, p := range plans {
			ks[i] = row[p.outputIdx]
		}
		keys[r] = ks
	}
	return keys, nil
}

// sortRelation stably sorts rows by the precomputed keys. NULLs sort
// first ascending and last descending (MySQL semantics, which GSN's
// original backend used).
func sortRelation(rel *Relation, keys [][]stream.Value, items []sqlparser.OrderItem) {
	idx := make([]int, len(rel.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range items {
			va, vb := ka[i], kb[i]
			if va == nil && vb == nil {
				continue
			}
			desc := items[i].Desc
			if va == nil {
				return !desc
			}
			if vb == nil {
				return desc
			}
			c, known, err := compare(va, vb)
			if err != nil || !known || c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	newRows := make([][]stream.Value, len(rel.Rows))
	for i, j := range idx {
		newRows[i] = rel.Rows[j]
	}
	rel.Rows = newRows
}

func (ev *evaluator) applyLimitOffset(rel *Relation, stmt *sqlparser.SelectStatement, outer *scope) error {
	evalCount := func(e sqlparser.Expr, what string) (int, error) {
		v, err := ev.eval(e, outer)
		if err != nil {
			return 0, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return 0, fmt.Errorf("sqlengine: %s must be a non-negative integer, got %v", what, v)
		}
		return int(n), nil
	}
	if stmt.Offset != nil {
		n, err := evalCount(stmt.Offset, "OFFSET")
		if err != nil {
			return err
		}
		if n >= len(rel.Rows) {
			rel.Rows = nil
		} else {
			rel.Rows = rel.Rows[n:]
		}
	}
	if stmt.Limit != nil {
		n, err := evalCount(stmt.Limit, "LIMIT")
		if err != nil {
			return err
		}
		if n < len(rel.Rows) {
			rel.Rows = rel.Rows[:n]
		}
	}
	return nil
}

func dedupeRows(rows [][]stream.Value, keys [][]stream.Value) ([][]stream.Value, [][]stream.Value) {
	seen := make(map[string]bool, len(rows))
	outRows := rows[:0:0]
	var outKeys [][]stream.Value
	for i, row := range rows {
		k := encodeRowKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		outRows = append(outRows, row)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	if keys == nil {
		return outRows, nil
	}
	return outRows, outKeys
}

func setOp(op sqlparser.SetOp, all bool, left, right *Relation) (*Relation, error) {
	if len(left.Cols) != len(right.Cols) {
		return nil, fmt.Errorf("sqlengine: %v operands have %d and %d columns",
			op, len(left.Cols), len(right.Cols))
	}
	out := &Relation{Cols: left.Cols}
	switch op {
	case sqlparser.Union:
		out.Rows = append(out.Rows, left.Rows...)
		out.Rows = append(out.Rows, right.Rows...)
		if !all {
			out.Rows, _ = dedupeRows(out.Rows, nil)
		}
	case sqlparser.Intersect:
		counts := make(map[string]int, len(right.Rows))
		for _, r := range right.Rows {
			counts[encodeRowKey(r)]++
		}
		emitted := make(map[string]bool)
		for _, l := range left.Rows {
			k := encodeRowKey(l)
			if counts[k] > 0 {
				if all {
					counts[k]--
					out.Rows = append(out.Rows, l)
				} else if !emitted[k] {
					emitted[k] = true
					out.Rows = append(out.Rows, l)
				}
			}
		}
	case sqlparser.Except:
		counts := make(map[string]int, len(right.Rows))
		for _, r := range right.Rows {
			counts[encodeRowKey(r)]++
		}
		emitted := make(map[string]bool)
		for _, l := range left.Rows {
			k := encodeRowKey(l)
			if counts[k] > 0 {
				if all {
					counts[k]--
				}
				continue
			}
			if !all && emitted[k] {
				continue
			}
			emitted[k] = true
			out.Rows = append(out.Rows, l)
		}
	default:
		return nil, fmt.Errorf("sqlengine: unknown set operation %v", op)
	}
	return out, nil
}
