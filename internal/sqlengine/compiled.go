package sqlengine

import (
	"fmt"

	"gsn/internal/sqlparser"
	"gsn/internal/stream"
)

// Error constructors shared with the interpreter's wording, so the
// compiled tier fails with byte-identical messages.
func errUnaryMinus(v stream.Value) error {
	return fmt.Errorf("sqlengine: unary minus of %T", v)
}

func errLikeTypes(v, p stream.Value) error {
	return fmt.Errorf("sqlengine: LIKE wants strings, got %T and %T", v, p)
}

func errCast(err error) error { return fmt.Errorf("sqlengine: CAST: %w", err) }

func errTooManyRows(max int) error {
	return fmt.Errorf("sqlengine: result exceeds %d rows", max)
}

// This file is the compiled tier of Plan: expressions bound once, at
// compile time, against the plan's fixed column layout. The generic
// evaluator resolves every column reference by name for every row of
// every execution (scope chain → ColumnIndex → CanonicalName), which
// profiles as the dominant cost of interpreted query serving. A bound
// expression is a closure tree whose column references are row indices,
// so per-row evaluation does no name resolution, no scope allocation
// and no aggregate-map lookups. Semantics — three-valued logic, NULL
// propagation, comparison and arithmetic coercions — are delegated to
// the same helpers (truth, compare, arith, likeMatch, aggState) the
// interpreter uses, so results are byte-identical; the repository's
// equivalence property test pins that.
//
// Grouped aggregation compiles too: GROUP BY key expressions bind to
// row-context closures evaluated once per input row, groups hash on the
// encoded key vector into per-group accumulator slots, and HAVING binds
// as a post-aggregation predicate evaluated over each group's aggregate
// slots and representative row — so the multi-key rollups composition
// tiers generate (per-room averages, per-type alarm counts) run on the
// bound path instead of the interpreter.
//
// Statement shapes the binder does not cover (subqueries, EXISTS,
// IN (SELECT), unknown functions) leave Plan.prog nil and fall back to
// the interpreted path.

// boundExpr evaluates one compiled expression over a row.
type boundExpr func(row []stream.Value, ctx *boundCtx) (stream.Value, error)

// boundCtx carries per-execution state for bound expressions.
type boundCtx struct {
	ev  *evaluator     // scalar functions (NOW needs the clock)
	agg []stream.Value // per-group aggregate results by slot
}

// boundProj is one compiled projection slot.
type boundProj struct {
	star    bool
	starIdx []int
	fn      boundExpr
}

// boundAgg is one compiled aggregate accumulator slot.
type boundAgg struct {
	kind      aggKind
	distinct  bool
	countStar bool
	arg       boundExpr
}

// boundOrder is one compiled ORDER BY key.
type boundOrder struct {
	outputIdx int
	fn        boundExpr
}

// boundProgram is a fully bound single-pass execution plan for one
// SELECT core: filter, group keys, aggregate slots, HAVING, project,
// sort keys.
type boundProgram struct {
	where   boundExpr
	proj    []boundProj
	aggs    []boundAgg
	order   []boundOrder
	groupBy []boundExpr // GROUP BY key expressions, row context
	having  boundExpr   // post-aggregation predicate (agg slots + rep row)
	grouped bool
}

// newBoundProgram binds sp against cols, returning nil when any part
// of the statement is outside the compiled subset.
func newBoundProgram(sp *simplePlan, cols []Column) *boundProgram {
	stmt := sp.stmt
	b := &binder{cols: cols, aggs: sp.aggs}
	prog := &boundProgram{grouped: sp.grouped}
	if stmt.Where != nil {
		if prog.where = b.bind(stmt.Where); prog.where == nil {
			return nil
		}
	}
	for _, g := range stmt.GroupBy {
		// Key expressions evaluate in plain row context (aggregates are
		// illegal there; an aggregate call falls back to the interpreter,
		// which reports it).
		keyBinder := &binder{cols: cols}
		fn := keyBinder.bind(g)
		if fn == nil {
			return nil
		}
		prog.groupBy = append(prog.groupBy, fn)
	}
	if stmt.Having != nil {
		if prog.having = b.bind(stmt.Having); prog.having == nil {
			return nil
		}
	}
	for _, item := range sp.proj {
		if item.star {
			prog.proj = append(prog.proj, boundProj{star: true, starIdx: item.starIdx})
			continue
		}
		fn := b.bind(item.expr)
		if fn == nil {
			return nil
		}
		prog.proj = append(prog.proj, boundProj{fn: fn})
	}
	for _, a := range sp.aggs {
		ba := boundAgg{kind: aggKinds[a.Name], distinct: a.Distinct, countStar: a.CountStar}
		if !a.CountStar {
			if len(a.Args) != 1 {
				return nil // surfaced as an error by the generic path
			}
			// Aggregate arguments evaluate in plain row context: nested
			// aggregates are rejected at analysis, so bind with no agg
			// slots visible.
			argBinder := &binder{cols: cols}
			if ba.arg = argBinder.bind(a.Args[0]); ba.arg == nil {
				return nil
			}
		}
		prog.aggs = append(prog.aggs, ba)
	}
	if sp.needSortKeys {
		for _, op := range sp.orderPlans {
			bo := boundOrder{outputIdx: op.outputIdx}
			if op.outputIdx < 0 {
				if bo.fn = b.bind(op.expr); bo.fn == nil {
					return nil
				}
			}
			prog.order = append(prog.order, bo)
		}
	}
	return prog
}

// binder compiles expressions against one column layout. aggs, when
// set, maps aggregate call nodes (by identity) to result slots.
type binder struct {
	cols []Column
	aggs []*sqlparser.FuncCall
}

// columnIndex mirrors Relation.ColumnIndex against the binder layout.
func (b *binder) columnIndex(table, name string) (int, bool) {
	table = stream.CanonicalName(table)
	name = stream.CanonicalName(name)
	found := -1
	for i, c := range b.cols {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, false // ambiguous: let the interpreter report it
		}
		found = i
	}
	if found < 0 {
		return -1, false
	}
	return found, true
}

// bind compiles e, returning nil when e (or a subexpression) is
// outside the compiled subset.
func (b *binder) bind(e sqlparser.Expr) boundExpr {
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Value
		return func([]stream.Value, *boundCtx) (stream.Value, error) { return v, nil }

	case *sqlparser.ColumnRef:
		idx, ok := b.columnIndex(x.Table, x.Name)
		if !ok {
			return nil
		}
		return func(row []stream.Value, _ *boundCtx) (stream.Value, error) { return row[idx], nil }

	case *sqlparser.BinaryExpr:
		return b.bindBinary(x)

	case *sqlparser.UnaryExpr:
		inner := b.bind(x.X)
		if inner == nil {
			return nil
		}
		switch x.Op {
		case "NOT":
			return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
				v, err := inner(row, ctx)
				if err != nil {
					return nil, err
				}
				t, known := truth(v)
				if !known {
					return nil, nil
				}
				return !t, nil
			}
		case "-":
			return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
				v, err := inner(row, ctx)
				if err != nil {
					return nil, err
				}
				switch n := v.(type) {
				case nil:
					return nil, nil
				case int64:
					return -n, nil
				case float64:
					return -n, nil
				}
				return nil, errUnaryMinus(v)
			}
		}
		return nil

	case *sqlparser.FuncCall:
		// Aggregate slots first (pointer identity against the plan's
		// inventory), then the scalar library.
		for i, a := range b.aggs {
			if a == x {
				slot := i
				return func(_ []stream.Value, ctx *boundCtx) (stream.Value, error) {
					return ctx.agg[slot], nil
				}
			}
		}
		if IsAggregateFunc(x.Name) {
			return nil // aggregate outside a slot: interpreter reports it
		}
		fn, ok := scalarFuncs[x.Name]
		if !ok {
			return nil
		}
		args := make([]boundExpr, len(x.Args))
		for i, a := range x.Args {
			if args[i] = b.bind(a); args[i] == nil {
				return nil
			}
		}
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			vals := make([]stream.Value, len(args))
			for i, af := range args {
				v, err := af(row, ctx)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return fn(vals, ctx.ev)
		}

	case *sqlparser.BetweenExpr:
		vf, lof, hif := b.bind(x.X), b.bind(x.Lo), b.bind(x.Hi)
		if vf == nil || lof == nil || hif == nil {
			return nil
		}
		not := x.Not
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			v, err := vf(row, ctx)
			if err != nil {
				return nil, err
			}
			lo, err := lof(row, ctx)
			if err != nil {
				return nil, err
			}
			hi, err := hif(row, ctx)
			if err != nil {
				return nil, err
			}
			cLo, okLo, err := compare(v, lo)
			if err != nil {
				return nil, err
			}
			cHi, okHi, err := compare(v, hi)
			if err != nil {
				return nil, err
			}
			if !okLo || !okHi {
				return nil, nil
			}
			in := cLo >= 0 && cHi <= 0
			if not {
				return !in, nil
			}
			return in, nil
		}

	case *sqlparser.LikeExpr:
		vf, pf := b.bind(x.X), b.bind(x.Pattern)
		if vf == nil || pf == nil {
			return nil
		}
		not := x.Not
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			v, err := vf(row, ctx)
			if err != nil {
				return nil, err
			}
			p, err := pf(row, ctx)
			if err != nil {
				return nil, err
			}
			if v == nil || p == nil {
				return nil, nil
			}
			s, ok1 := v.(string)
			pat, ok2 := p.(string)
			if !ok1 || !ok2 {
				return nil, errLikeTypes(v, p)
			}
			m := likeMatch(s, pat)
			if not {
				return !m, nil
			}
			return m, nil
		}

	case *sqlparser.IsNullExpr:
		inner := b.bind(x.X)
		if inner == nil {
			return nil
		}
		not := x.Not
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			v, err := inner(row, ctx)
			if err != nil {
				return nil, err
			}
			isNull := v == nil
			if not {
				return !isNull, nil
			}
			return isNull, nil
		}

	case *sqlparser.InExpr:
		if x.Select != nil {
			return nil
		}
		vf := b.bind(x.X)
		if vf == nil {
			return nil
		}
		items := make([]boundExpr, len(x.List))
		for i, it := range x.List {
			if items[i] = b.bind(it); items[i] == nil {
				return nil
			}
		}
		not := x.Not
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			v, err := vf(row, ctx)
			if err != nil {
				return nil, err
			}
			candidates := make([]stream.Value, len(items))
			for i, it := range items {
				if candidates[i], err = it(row, ctx); err != nil {
					return nil, err
				}
			}
			if v == nil {
				return nil, nil
			}
			sawNull := false
			for _, c := range candidates {
				if c == nil {
					sawNull = true
					continue
				}
				cmp, known, err := compare(v, c)
				if err != nil {
					continue // mixed-type candidate cannot match
				}
				if known && cmp == 0 {
					return !not, nil
				}
			}
			if sawNull {
				return nil, nil
			}
			return not, nil
		}

	case *sqlparser.CaseExpr:
		return b.bindCase(x)

	case *sqlparser.CastExpr:
		inner := b.bind(x.X)
		if inner == nil {
			return nil
		}
		t, err := stream.ParseFieldType(x.Type)
		if err != nil {
			return nil // interpreter surfaces the CAST error
		}
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			v, err := inner(row, ctx)
			if err != nil {
				return nil, err
			}
			if f, ok := v.(float64); ok && (t == stream.TypeInt || t == stream.TypeTime) {
				return int64(f), nil
			}
			out, err := stream.Coerce(v, t)
			if err != nil {
				return nil, errCast(err)
			}
			return out, nil
		}
	}
	return nil
}

func (b *binder) bindBinary(x *sqlparser.BinaryExpr) boundExpr {
	lf, rf := b.bind(x.L), b.bind(x.R)
	if lf == nil || rf == nil {
		return nil
	}
	op := x.Op
	switch op {
	case sqlparser.OpAnd:
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			lv, err := lf(row, ctx)
			if err != nil {
				return nil, err
			}
			lt, lknown := truth(lv)
			if lknown && !lt {
				return false, nil
			}
			rv, err := rf(row, ctx)
			if err != nil {
				return nil, err
			}
			rt, rknown := truth(rv)
			if rknown && !rt {
				return false, nil
			}
			if !lknown || !rknown {
				return nil, nil
			}
			return true, nil
		}
	case sqlparser.OpOr:
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			lv, err := lf(row, ctx)
			if err != nil {
				return nil, err
			}
			lt, lknown := truth(lv)
			if lknown && lt {
				return true, nil
			}
			rv, err := rf(row, ctx)
			if err != nil {
				return nil, err
			}
			rt, rknown := truth(rv)
			if rknown && rt {
				return true, nil
			}
			if !lknown || !rknown {
				return nil, nil
			}
			return false, nil
		}
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			lv, err := lf(row, ctx)
			if err != nil {
				return nil, err
			}
			rv, err := rf(row, ctx)
			if err != nil {
				return nil, err
			}
			c, known, err := compare(lv, rv)
			if err != nil {
				return nil, err
			}
			if !known {
				return nil, nil
			}
			switch op {
			case sqlparser.OpEq:
				return c == 0, nil
			case sqlparser.OpNe:
				return c != 0, nil
			case sqlparser.OpLt:
				return c < 0, nil
			case sqlparser.OpLe:
				return c <= 0, nil
			case sqlparser.OpGt:
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		}
	case sqlparser.OpConcat:
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			lv, err := lf(row, ctx)
			if err != nil {
				return nil, err
			}
			rv, err := rf(row, ctx)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return stream.FormatValue(lv) + stream.FormatValue(rv), nil
		}
	default:
		return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
			lv, err := lf(row, ctx)
			if err != nil {
				return nil, err
			}
			rv, err := rf(row, ctx)
			if err != nil {
				return nil, err
			}
			return arith(op, lv, rv)
		}
	}
}

func (b *binder) bindCase(x *sqlparser.CaseExpr) boundExpr {
	var operand boundExpr
	if x.Operand != nil {
		if operand = b.bind(x.Operand); operand == nil {
			return nil
		}
	}
	type boundWhen struct{ cond, then boundExpr }
	whens := make([]boundWhen, len(x.Whens))
	for i, w := range x.Whens {
		whens[i].cond = b.bind(w.Cond)
		whens[i].then = b.bind(w.Then)
		if whens[i].cond == nil || whens[i].then == nil {
			return nil
		}
	}
	var elseFn boundExpr
	if x.Else != nil {
		if elseFn = b.bind(x.Else); elseFn == nil {
			return nil
		}
	}
	return func(row []stream.Value, ctx *boundCtx) (stream.Value, error) {
		if operand != nil {
			op, err := operand(row, ctx)
			if err != nil {
				return nil, err
			}
			for _, w := range whens {
				cv, err := w.cond(row, ctx)
				if err != nil {
					return nil, err
				}
				c, known, err := compare(op, cv)
				if err != nil {
					return nil, err
				}
				if known && c == 0 {
					return w.then(row, ctx)
				}
			}
		} else {
			for _, w := range whens {
				cv, err := w.cond(row, ctx)
				if err != nil {
					return nil, err
				}
				if t, known := truth(cv); known && t {
					return w.then(row, ctx)
				}
			}
		}
		if elseFn != nil {
			return elseFn(row, ctx)
		}
		return nil, nil
	}
}

// run executes the bound program over the input rows, mirroring
// runSimple + execGrouped for the compiled subset.
func (prog *boundProgram) run(p *Plan, rows [][]stream.Value, opts Options) (*Relation, error) {
	ev := &evaluator{opts: opts, clock: opts.Clock}
	ctx := &boundCtx{ev: ev}
	sp := p.sp
	out := &Relation{Cols: sp.outCols}
	var sortKeys [][]stream.Value

	project := func(row []stream.Value) error {
		outRow := make([]stream.Value, 0, len(sp.outCols))
		for _, pj := range prog.proj {
			if pj.star {
				for _, i := range pj.starIdx {
					outRow = append(outRow, row[i])
				}
				continue
			}
			v, err := pj.fn(row, ctx)
			if err != nil {
				return err
			}
			outRow = append(outRow, v)
		}
		out.Rows = append(out.Rows, outRow)
		if len(out.Rows) > opts.MaxRows {
			return errTooManyRows(opts.MaxRows)
		}
		if len(prog.order) > 0 {
			keys := make([]stream.Value, len(prog.order))
			for i, o := range prog.order {
				if o.outputIdx >= 0 {
					keys[i] = outRow[o.outputIdx]
					continue
				}
				v, err := o.fn(row, ctx)
				if err != nil {
					return err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		return nil
	}

	if !prog.grouped {
		for _, row := range rows {
			if prog.where != nil {
				v, err := prog.where(row, ctx)
				if err != nil {
					return nil, err
				}
				if t, known := truth(v); !known || !t {
					continue
				}
			}
			if err := project(row); err != nil {
				return nil, err
			}
		}
	} else if err := prog.runGrouped(p, rows, ctx, project); err != nil {
		return nil, err
	}

	if sp.stmt.Distinct {
		out.Rows, sortKeys = dedupeRows(out.Rows, sortKeys)
	}
	if len(sp.stmt.OrderBy) > 0 && sortKeys != nil {
		sortRelation(out, sortKeys, sp.stmt.OrderBy)
	}
	if err := ev.applyLimitOffset(out, sp.stmt, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// boundGroup is one hash bucket of the grouped compiled path: the
// group's representative row (the first WHERE-surviving row, exactly
// the interpreter's choice) and one accumulator per aggregate slot
// (flat, one allocation per group).
type boundGroup struct {
	rep    []stream.Value
	states []aggState
}

// runGrouped executes the aggregation half of the bound program:
// groups hash on the encoded GROUP BY key vector (one key evaluation
// per row, resolved to row indices at bind time; the encoded key is
// looked up allocation-free and materialised only on first sight),
// aggregates fold into per-group slots, and each surviving group
// projects over its representative row with the group's aggregate
// results installed in the context. Output order is first-seen order,
// matching execGrouped.
func (prog *boundProgram) runGrouped(p *Plan, rows [][]stream.Value,
	ctx *boundCtx, project func([]stream.Value) error) error {

	groups := make(map[string]*boundGroup)
	var order []*boundGroup
	newGroup := func(rep []stream.Value) *boundGroup {
		g := &boundGroup{rep: rep, states: make([]aggState, len(prog.aggs))}
		for i, a := range prog.aggs {
			g.states[i] = aggState{kind: a.kind, distinct: a.distinct, intOnly: true}
		}
		order = append(order, g)
		return g
	}

	var keyVals []stream.Value
	var keyBuf []byte
	if len(prog.groupBy) > 0 {
		keyVals = make([]stream.Value, len(prog.groupBy))
	}
	var single *boundGroup // the one group of a GROUP BY-less aggregation
	for _, row := range rows {
		if prog.where != nil {
			v, err := prog.where(row, ctx)
			if err != nil {
				return err
			}
			if t, known := truth(v); !known || !t {
				continue
			}
		}
		var g *boundGroup
		if len(prog.groupBy) > 0 {
			for i, fn := range prog.groupBy {
				v, err := fn(row, ctx)
				if err != nil {
					return err
				}
				keyVals[i] = v
			}
			keyBuf = appendRowKey(keyBuf[:0], keyVals)
			// map[string([]byte)] lookups compile without a string
			// allocation; the key is materialised only on a miss.
			if g = groups[string(keyBuf)]; g == nil {
				g = newGroup(row)
				groups[string(keyBuf)] = g
			}
		} else {
			if single == nil {
				single = newGroup(row)
			}
			g = single
		}
		for i := range prog.aggs {
			a := &prog.aggs[i]
			if a.countStar {
				if err := g.states[i].add(int64(1)); err != nil {
					return err
				}
				continue
			}
			v, err := a.arg(row, ctx)
			if err != nil {
				return err
			}
			if err := g.states[i].add(v); err != nil {
				return err
			}
		}
	}

	// Aggregates without GROUP BY over an empty input still produce one
	// row (COUNT(*) = 0), projected over an all-NULL representative;
	// with GROUP BY an empty input produces no groups at all.
	if len(order) == 0 && len(prog.groupBy) == 0 {
		newGroup(make([]stream.Value, len(p.inCols)))
	}

	ctx.agg = make([]stream.Value, len(prog.aggs))
	for _, g := range order {
		for i := range g.states {
			ctx.agg[i] = g.states[i].result()
		}
		if prog.having != nil {
			v, err := prog.having(g.rep, ctx)
			if err != nil {
				return err
			}
			if t, known := truth(v); !known || !t {
				continue
			}
		}
		if err := project(g.rep); err != nil {
			return err
		}
	}
	return nil
}
