// Package metrics provides the lightweight instrumentation used by the
// container and the evaluation harness: counters, gauges and latency
// histograms with reservoir-sampled quantiles. The Figure 3 and
// Figure 4 reproductions read their processing-time series from these
// histograms.
package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// reservoirSize bounds the quantile sample set per histogram.
const reservoirSize = 4096

// Histogram records durations; quantiles come from uniform reservoir
// sampling, which is accurate enough for latency reporting and needs no
// preconfigured bucket bounds.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	rng     *rand.Rand
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{rng: rand.New(rand.NewSource(1))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, d)
	} else {
		// Vitter's algorithm R.
		if i := h.rng.Int63n(int64(h.count)); i < int64(reservoirSize) {
			h.samples[i] = d
		}
	}
}

// Time runs fn and observes its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// HistogramStats is a point-in-time summary.
type HistogramStats struct {
	Count               uint64
	Sum, Mean, Min, Max time.Duration
	P50, P90, P95, P99  time.Duration
}

// Snapshot summarises the histogram.
func (h *Histogram) Snapshot() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		st.Mean = h.sum / time.Duration(h.count)
	}
	if len(h.samples) > 0 {
		sorted := make([]time.Duration, len(h.samples))
		copy(sorted, h.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		q := func(p float64) time.Duration {
			idx := int(p * float64(len(sorted)-1))
			return sorted[idx]
		}
		st.P50, st.P90, st.P95, st.P99 = q(0.50), q(0.90), q(0.95), q(0.99)
	}
	return st
}

// Reset clears the histogram (between benchmark series points).
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.samples = h.samples[:0]
}

// Registry names metrics; Get-or-create accessors are safe for
// concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders every metric into a JSON-friendly map (durations in
// microseconds for readability).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		st := h.Snapshot()
		out[name] = map[string]any{
			"count":   st.Count,
			"mean_us": st.Mean.Microseconds(),
			"min_us":  st.Min.Microseconds(),
			"max_us":  st.Max.Microseconds(),
			"p50_us":  st.P50.Microseconds(),
			"p95_us":  st.P95.Microseconds(),
			"p99_us":  st.P99.Microseconds(),
		}
	}
	return out
}
