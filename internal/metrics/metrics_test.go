package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("y")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st := h.Snapshot()
	if st.Count != 100 {
		t.Errorf("count = %d", st.Count)
	}
	if st.Min != time.Millisecond || st.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean < 50*time.Millisecond || st.Mean > 51*time.Millisecond {
		t.Errorf("mean = %v", st.Mean)
	}
	if st.P50 < 45*time.Millisecond || st.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", st.P50)
	}
	if st.P99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", st.P99)
	}
	if st.P50 > st.P90 || st.P90 > st.P95 || st.P95 > st.P99 {
		t.Errorf("quantiles not monotone: %+v", st)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 3*reservoirSize; i++ {
		h.Observe(time.Duration(i))
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n != reservoirSize {
		t.Errorf("reservoir = %d, want %d", n, reservoirSize)
	}
	if st := h.Snapshot(); st.Count != uint64(3*reservoirSize) {
		t.Errorf("count = %d", st.Count)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	st := h.Snapshot()
	if st.Count != 0 || st.Max != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestHistogramTime(t *testing.T) {
	h := NewHistogram()
	h.Time(func() { time.Sleep(2 * time.Millisecond) })
	if st := h.Snapshot(); st.Count != 1 || st.Max < time.Millisecond {
		t.Errorf("Time recorded %+v", st)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Microsecond)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Errorf("counter = %d", r.Counter("c").Value())
	}
	if st := r.Histogram("h").Snapshot(); st.Count != 8000 {
		t.Errorf("histogram count = %d", st.Count)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(time.Millisecond)
	snap := r.Snapshot()
	if snap["a"] != uint64(1) || snap["b"] != int64(2) {
		t.Errorf("snapshot = %v", snap)
	}
	hm, ok := snap["c"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Errorf("histogram snapshot = %v", snap["c"])
	}
}
