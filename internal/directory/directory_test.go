package directory

import (
	"math/rand"
	"testing"
	"time"

	"gsn/internal/stream"
)

func TestPublishAndQueryByPredicates(t *testing.T) {
	clock := stream.NewManualClock(0)
	r := NewRegistry(clock, time.Minute)
	r.Publish("temp-bc143", "http://node-a", map[string]string{
		"Type": "temperature", "location": "bc143"}, 0)
	r.Publish("temp-roof", "http://node-a", map[string]string{
		"type": "temperature", "location": "roof"}, 0)
	r.Publish("cam-1", "http://node-b", map[string]string{
		"type": "camera", "location": "bc143"}, 0)

	// The paper's Figure 1 logical address: type=temperature AND
	// location=bc143.
	got := r.Query(map[string]string{"type": "temperature", "location": "bc143"})
	if len(got) != 1 || got[0].Sensor != "TEMP-BC143" {
		t.Fatalf("Query = %+v", got)
	}
	// Single-predicate queries widen the match.
	if got := r.Query(map[string]string{"location": "bc143"}); len(got) != 2 {
		t.Errorf("location query = %+v", got)
	}
	// Values match case-insensitively.
	if got := r.Query(map[string]string{"TYPE": "Temperature"}); len(got) != 2 {
		t.Errorf("case-insensitive query = %+v", got)
	}
	// The sensor name is queryable as name.
	if got := r.Query(map[string]string{"name": "cam-1"}); len(got) != 1 {
		t.Errorf("name query = %+v", got)
	}
	// Empty query returns everything live.
	if got := r.Query(nil); len(got) != 3 {
		t.Errorf("empty query = %d entries", len(got))
	}
	// Unmatched predicate key excludes.
	if got := r.Query(map[string]string{"altitude": "400m"}); len(got) != 0 {
		t.Errorf("unmatched key query = %+v", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := stream.NewManualClock(0)
	r := NewRegistry(clock, time.Minute)
	r.Publish("s", "n", nil, 10*time.Second)
	if len(r.Query(nil)) != 1 {
		t.Fatal("entry not visible")
	}
	clock.Advance(11 * time.Second)
	if got := r.Query(nil); len(got) != 0 {
		t.Fatalf("expired entry still visible: %+v", got)
	}
	if dropped := r.GC(); dropped != 1 {
		t.Errorf("GC dropped %d, want 1", dropped)
	}
	if r.Len() != 0 {
		t.Errorf("Len after GC = %d", r.Len())
	}
}

func TestRepublishRefreshes(t *testing.T) {
	clock := stream.NewManualClock(0)
	r := NewRegistry(clock, time.Minute)
	r.Publish("s", "n", nil, 10*time.Second)
	clock.Advance(8 * time.Second)
	r.Publish("s", "n", nil, 10*time.Second) // refresh
	clock.Advance(8 * time.Second)           // 16s after first publish
	if len(r.Query(nil)) != 1 {
		t.Error("refreshed entry expired")
	}
	if r.Len() != 1 {
		t.Errorf("refresh duplicated the entry: %d", r.Len())
	}
}

func TestUnpublish(t *testing.T) {
	r := NewRegistry(stream.NewManualClock(0), time.Minute)
	r.Publish("s", "n", nil, 0)
	r.Unpublish("S", "n") // case-insensitive sensor
	if len(r.Query(nil)) != 0 {
		t.Error("entry survived Unpublish")
	}
}

func TestMergeLatestExpiryWins(t *testing.T) {
	clock := stream.NewManualClock(0)
	a := NewRegistry(clock, time.Minute)
	b := NewRegistry(clock, time.Minute)
	a.Publish("s", "n", map[string]string{"v": "old"}, 10*time.Second)
	clock.Advance(time.Second)
	b.Publish("s", "n", map[string]string{"v": "new"}, 10*time.Second)

	// a adopts b's fresher entry; b ignores a's staler one.
	if adopted := a.Merge(b.Snapshot()); adopted != 1 {
		t.Errorf("a adopted %d", adopted)
	}
	if adopted := b.Merge(a.Snapshot()); adopted != 0 {
		t.Errorf("b adopted %d", adopted)
	}
	got := a.Query(map[string]string{"v": "new"})
	if len(got) != 1 {
		t.Fatalf("a did not adopt the newer predicates: %+v", a.Snapshot())
	}
}

func TestMergeSkipsExpired(t *testing.T) {
	clock := stream.NewManualClock(1_000_000)
	r := NewRegistry(clock, time.Minute)
	stale := Entry{Sensor: "S", Node: "n", Expires: clock.Now() - 1}
	if adopted := r.Merge([]Entry{stale}); adopted != 0 {
		t.Errorf("adopted expired entry")
	}
	if adopted := r.Merge([]Entry{{Sensor: "", Node: "n", Expires: clock.Now() + 1000}}); adopted != 0 {
		t.Errorf("adopted anonymous entry")
	}
}

// Gossip convergence: random pairwise merges over registries must
// converge to identical snapshots.
func TestGossipConvergence(t *testing.T) {
	clock := stream.NewManualClock(0)
	rng := rand.New(rand.NewSource(42))
	const nodes = 5
	regs := make([]*Registry, nodes)
	for i := range regs {
		regs[i] = NewRegistry(clock, time.Hour)
	}
	// Each node publishes two sensors of its own.
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, r := range regs {
		r.Publish(names[i]+"-1", names[i], map[string]string{"origin": names[i]}, 0)
		r.Publish(names[i]+"-2", names[i], map[string]string{"origin": names[i]}, 0)
	}
	// Random pairwise gossip rounds (push-pull).
	for round := 0; round < 40; round++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		regs[a].Merge(regs[b].Snapshot())
		regs[b].Merge(regs[a].Snapshot())
	}
	want := len(regs[0].Snapshot())
	if want != nodes*2 {
		t.Fatalf("node 0 has %d entries, want %d", want, nodes*2)
	}
	for i, r := range regs {
		if got := len(r.Snapshot()); got != want {
			t.Errorf("node %d has %d entries, want %d", i, got, want)
		}
	}
}

func TestMatchesSubsetSemantics(t *testing.T) {
	e := Entry{Sensor: "S", Predicates: map[string]string{"a": "1", "b": "2"}}
	if !e.Matches(nil) {
		t.Error("nil query should match")
	}
	if !e.Matches(map[string]string{"a": "1"}) {
		t.Error("subset should match")
	}
	if e.Matches(map[string]string{"a": "1", "c": "3"}) {
		t.Error("superset should not match")
	}
	if e.Matches(map[string]string{"a": "2"}) {
		t.Error("wrong value matched")
	}
}
