// Package directory implements GSN's peer-to-peer discovery directory
// (paper §4): virtual sensor descriptions are published as user-definable
// key-value pairs and can be discovered by any combination of their
// properties (e.g. type=temperature AND location=bc143 — exactly the
// logical addressing used by the paper's Figure 1 remote source).
//
// Every container runs a registry; registries synchronise pairwise by
// exchanging snapshots (the p2p package provides the HTTP transport).
// Entries carry a TTL and must be republished; the merge rule
// (latest-expiry-wins) is a monotone join, so gossip converges without
// coordination.
package directory

import (
	"sort"
	"strings"
	"sync"
	"time"

	"gsn/internal/stream"
)

// Entry is one published virtual sensor.
type Entry struct {
	// Sensor is the virtual sensor name (canonical form).
	Sensor string `json:"sensor"`
	// Node is the address of the hosting container (e.g.
	// "http://host:22001"); empty for local-only registries.
	Node string `json:"node"`
	// Predicates are the discovery key-value pairs (lower-case keys).
	Predicates map[string]string `json:"predicates"`
	// Expires is the entry's expiry time.
	Expires stream.Timestamp `json:"expires"`
}

// key identifies an entry: one publication per (node, sensor).
func (e Entry) key() string { return e.Node + "|" + e.Sensor }

// Matches reports whether the entry satisfies every wanted predicate
// (subset match, case-insensitive keys and values; the sensor name is
// queryable under "name").
func (e Entry) Matches(want map[string]string) bool {
	for k, v := range want {
		k = strings.ToLower(strings.TrimSpace(k))
		if k == "" {
			continue
		}
		got, ok := e.Predicates[k]
		if !ok {
			return false
		}
		if !strings.EqualFold(got, v) {
			return false
		}
	}
	return true
}

// Registry is a TTL-based directory. All methods are safe for concurrent
// use.
type Registry struct {
	clock      stream.Clock
	defaultTTL time.Duration

	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry creates a registry; ttl is the default publication
// lifetime (0 means 5 minutes).
func NewRegistry(clock stream.Clock, ttl time.Duration) *Registry {
	if clock == nil {
		clock = stream.SystemClock()
	}
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &Registry{clock: clock, defaultTTL: ttl, entries: make(map[string]Entry)}
}

// Publish registers (or refreshes) a sensor publication. Predicates are
// normalised to lower-case keys; the sensor name is always included
// under "name". ttl of 0 uses the registry default.
func (r *Registry) Publish(sensor, node string, predicates map[string]string, ttl time.Duration) Entry {
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	canonical := stream.CanonicalName(sensor)
	preds := make(map[string]string, len(predicates)+1)
	for k, v := range predicates {
		k = strings.ToLower(strings.TrimSpace(k))
		if k != "" {
			preds[k] = v
		}
	}
	if _, ok := preds["name"]; !ok {
		preds["name"] = canonical
	}
	e := Entry{
		Sensor:     canonical,
		Node:       node,
		Predicates: preds,
		Expires:    r.clock.Now().Add(ttl),
	}
	r.mu.Lock()
	r.entries[e.key()] = e
	r.mu.Unlock()
	return e
}

// Unpublish removes a publication immediately.
func (r *Registry) Unpublish(sensor, node string) {
	e := Entry{Sensor: stream.CanonicalName(sensor), Node: node}
	r.mu.Lock()
	delete(r.entries, e.key())
	r.mu.Unlock()
}

// Query returns the live entries matching every wanted predicate,
// sorted by sensor then node for determinism.
func (r *Registry) Query(want map[string]string) []Entry {
	now := r.clock.Now()
	r.mu.RLock()
	var out []Entry
	for _, e := range r.entries {
		if e.Expires <= now {
			continue
		}
		if e.Matches(want) {
			out = append(out, e)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sensor != out[j].Sensor {
			return out[i].Sensor < out[j].Sensor
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Snapshot returns all live entries (the gossip payload).
func (r *Registry) Snapshot() []Entry {
	return r.Query(nil)
}

// Merge adopts entries from a peer snapshot, keeping whichever version
// of each publication expires later (a monotone join: merge order never
// matters). It returns the number of adopted entries.
func (r *Registry) Merge(entries []Entry) int {
	now := r.clock.Now()
	adopted := 0
	r.mu.Lock()
	for _, e := range entries {
		if e.Expires <= now || e.Sensor == "" {
			continue
		}
		e.Sensor = stream.CanonicalName(e.Sensor)
		existing, ok := r.entries[e.key()]
		if !ok || e.Expires > existing.Expires {
			r.entries[e.key()] = e
			adopted++
		}
	}
	r.mu.Unlock()
	return adopted
}

// GC removes expired entries and returns how many were dropped.
func (r *Registry) GC() int {
	now := r.clock.Now()
	dropped := 0
	r.mu.Lock()
	for k, e := range r.entries {
		if e.Expires <= now {
			delete(r.entries, k)
			dropped++
		}
	}
	r.mu.Unlock()
	return dropped
}

// Len reports the number of stored (possibly expired) entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
