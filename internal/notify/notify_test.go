package notify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsn/internal/stream"
)

var nSchema = stream.MustSchema(
	stream.Field{Name: "temperature", Type: stream.TypeInt},
	stream.Field{Name: "img", Type: stream.TypeBytes},
)

func nElem(t *testing.T, ts stream.Timestamp, temp int64) stream.Element {
	t.Helper()
	e, err := stream.NewElement(nSchema, ts, temp, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testManager() *Manager {
	return NewManager(Options{QueueSize: 64, Retries: 2, RetryDelay: time.Millisecond})
}

func TestPublishToSubscriber(t *testing.T) {
	m := testManager()
	defer m.Close()
	var got atomic.Int64
	_, err := m.Subscribe("vs1", FuncChannel{Fn: func(ev Event) error {
		if ev.Sensor != "VS1" {
			t.Errorf("sensor = %q", ev.Sensor)
		}
		got.Add(1)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Publish("vs1", nElem(t, stream.Timestamp(i+1), int64(i)))
	}
	if !m.Flush(time.Second) {
		t.Fatal("Flush timed out")
	}
	if got.Load() != 5 {
		t.Errorf("delivered %d of 5", got.Load())
	}
}

func TestSequenceNumbersPerSensor(t *testing.T) {
	m := testManager()
	defer m.Close()
	var mu sync.Mutex
	seqs := map[string][]uint64{}
	m.Subscribe("", FuncChannel{Fn: func(ev Event) error {
		mu.Lock()
		seqs[ev.Sensor] = append(seqs[ev.Sensor], ev.Seq)
		mu.Unlock()
		return nil
	}})
	m.Publish("a", nElem(t, 1, 1))
	m.Publish("b", nElem(t, 2, 2))
	m.Publish("a", nElem(t, 3, 3))
	if !m.Flush(time.Second) {
		t.Fatal("Flush timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs["A"]) != 2 || seqs["A"][0] != 1 || seqs["A"][1] != 2 {
		t.Errorf("sensor A seqs = %v", seqs["A"])
	}
	if len(seqs["B"]) != 1 || seqs["B"][0] != 1 {
		t.Errorf("sensor B seqs = %v", seqs["B"])
	}
}

func TestWildcardAndFiltering(t *testing.T) {
	m := testManager()
	defer m.Close()
	var all, onlyA atomic.Int64
	m.Subscribe("", FuncChannel{Fn: func(Event) error { all.Add(1); return nil }})
	m.Subscribe("a", FuncChannel{Fn: func(Event) error { onlyA.Add(1); return nil }})
	m.Publish("a", nElem(t, 1, 1))
	m.Publish("b", nElem(t, 2, 2))
	m.Flush(time.Second)
	if all.Load() != 2 || onlyA.Load() != 1 {
		t.Errorf("all=%d onlyA=%d", all.Load(), onlyA.Load())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	m := testManager()
	defer m.Close()
	var got atomic.Int64
	id, _ := m.Subscribe("s", FuncChannel{Fn: func(Event) error { got.Add(1); return nil }})
	m.Publish("s", nElem(t, 1, 1))
	m.Flush(time.Second)
	if err := m.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	m.Publish("s", nElem(t, 2, 2))
	m.Flush(time.Second)
	if got.Load() != 1 {
		t.Errorf("delivered %d, want 1", got.Load())
	}
	if err := m.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe succeeded")
	}
}

func TestUnsubscribeSensor(t *testing.T) {
	m := testManager()
	defer m.Close()
	m.Subscribe("s", FuncChannel{Fn: func(Event) error { return nil }})
	m.Subscribe("s", FuncChannel{Fn: func(Event) error { return nil }})
	m.Subscribe("other", FuncChannel{Fn: func(Event) error { return nil }})
	m.UnsubscribeSensor("s")
	stats := m.Stats()
	if len(stats) != 1 || stats[0].Sensor != "OTHER" {
		t.Errorf("stats after UnsubscribeSensor = %+v", stats)
	}
}

func TestRetriesThenFailure(t *testing.T) {
	m := NewManager(Options{QueueSize: 8, Retries: 3, RetryDelay: time.Millisecond})
	defer m.Close()
	var attempts atomic.Int64
	m.Subscribe("s", FuncChannel{Fn: func(Event) error {
		attempts.Add(1)
		return fmt.Errorf("nope")
	}})
	m.Publish("s", nElem(t, 1, 1))
	m.Flush(time.Second)
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d, want 3", attempts.Load())
	}
	st := m.Stats()
	if st[0].Failed != 1 || st[0].Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	m := NewManager(Options{QueueSize: 8, Retries: 3, RetryDelay: time.Millisecond})
	defer m.Close()
	var attempts atomic.Int64
	m.Subscribe("s", FuncChannel{Fn: func(Event) error {
		if attempts.Add(1) < 2 {
			return fmt.Errorf("flaky")
		}
		return nil
	}})
	m.Publish("s", nElem(t, 1, 1))
	m.Flush(time.Second)
	st := m.Stats()
	if st[0].Delivered != 1 || st[0].Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueOverflowDropsAndCounts(t *testing.T) {
	m := NewManager(Options{QueueSize: 1, Retries: 1, RetryDelay: time.Millisecond})
	defer m.Close()
	block := make(chan struct{})
	m.Subscribe("s", FuncChannel{Fn: func(Event) error {
		<-block
		return nil
	}})
	for i := 0; i < 10; i++ {
		m.Publish("s", nElem(t, stream.Timestamp(i+1), int64(i)))
	}
	close(block)
	m.Flush(time.Second)
	st := m.Stats()[0]
	if st.Dropped == 0 {
		t.Errorf("expected drops under a blocked consumer: %+v", st)
	}
	if st.Delivered+st.Dropped != 10 {
		t.Errorf("delivered %d + dropped %d != 10", st.Delivered, st.Dropped)
	}
}

func TestManagerCloseIsIdempotentAndFinal(t *testing.T) {
	m := testManager()
	m.Subscribe("s", FuncChannel{Fn: func(Event) error { return nil }})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscribe("s", FuncChannel{Fn: func(Event) error { return nil }}); err == nil {
		t.Error("Subscribe after Close succeeded")
	}
}

func TestNilChannelRejected(t *testing.T) {
	m := testManager()
	defer m.Close()
	if _, err := m.Subscribe("s", nil); err == nil {
		t.Error("nil channel accepted")
	}
}

func TestMarshalEventSummarisesBytes(t *testing.T) {
	ev := Event{Sensor: "S", Seq: 7, Element: nElem(t, 1234, 42)}
	data, err := MarshalEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EventJSON
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Sensor != "S" || decoded.Seq != 7 || decoded.Timestamp != 1234 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Values["TEMPERATURE"] != float64(42) {
		t.Errorf("temperature = %v", decoded.Values["TEMPERATURE"])
	}
	if decoded.Values["IMG"] != "<3 bytes>" {
		t.Errorf("img = %v", decoded.Values["IMG"])
	}
}

func TestChanChannel(t *testing.T) {
	ch := NewChanChannel(2)
	ev := Event{Sensor: "S", Seq: 1, Element: nElem(t, 1, 1)}
	if err := ch.Deliver(ev); err != nil {
		t.Fatal(err)
	}
	if err := ch.Deliver(ev); err != nil {
		t.Fatal(err)
	}
	if err := ch.Deliver(ev); err == nil {
		t.Error("full channel accepted delivery")
	}
	<-ch.C
	ch.Close()
	if _, open := <-ch.C; !open {
		// one event was still buffered; after reading it the channel
		// reports closed
	}
}

func TestLogChannel(t *testing.T) {
	var buf bytes.Buffer
	ch := NewLogChannel(&buf)
	if err := ch.Deliver(Event{Sensor: "S", Seq: 3, Element: nElem(t, 1, 9)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "notify S #3") || !strings.Contains(out, "TEMPERATURE") {
		t.Errorf("log line = %q", out)
	}
}

func TestFileChannel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ch, err := NewFileChannel(path)
	if err != nil {
		t.Fatal(err)
	}
	ch.Deliver(Event{Sensor: "S", Seq: 1, Element: nElem(t, 1, 5)})
	ch.Deliver(Event{Sensor: "S", Seq: 2, Element: nElem(t, 2, 6)})
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file has %d lines", len(lines))
	}
	var decoded EventJSON
	if err := json.Unmarshal([]byte(lines[1]), &decoded); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if decoded.Seq != 2 {
		t.Errorf("seq = %d", decoded.Seq)
	}
}

func TestWebhookChannel(t *testing.T) {
	var mu sync.Mutex
	var bodies []EventJSON
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev EventJSON
		json.NewDecoder(r.Body).Decode(&ev)
		mu.Lock()
		bodies = append(bodies, ev)
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	ch := NewWebhookChannel(srv.URL)
	if err := ch.Deliver(Event{Sensor: "S", Seq: 1, Element: nElem(t, 1, 77)}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 || bodies[0].Values["TEMPERATURE"] != float64(77) {
		t.Errorf("webhook bodies = %+v", bodies)
	}
}

func TestWebhookChannelErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()
	ch := NewWebhookChannel(srv.URL)
	if err := ch.Deliver(Event{Sensor: "S", Seq: 1, Element: nElem(t, 1, 1)}); err == nil {
		t.Error("5xx response not reported as delivery failure")
	}
}
