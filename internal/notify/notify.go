// Package notify implements GSN's notification manager (paper §4):
// delivery of new stream elements to registered clients over an
// extensible set of notification channels. Each subscription gets its
// own bounded queue and delivery goroutine so one slow client cannot
// stall the processing pipeline — overflow drops the newest event and
// counts it, which is the correct behaviour for observations.
package notify

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsn/internal/resilience"
	"gsn/internal/stream"
)

// Event is one notification: a new output element of a virtual sensor.
type Event struct {
	// Sensor is the producing virtual sensor's name.
	Sensor string
	// Seq is the per-sensor sequence number (1-based).
	Seq uint64
	// Element is the produced stream element.
	Element stream.Element
}

// Channel delivers events to one kind of client endpoint. Deliver may
// block (network I/O); the manager calls it from the subscription's own
// goroutine. Implementations must be safe for use from one goroutine at
// a time.
type Channel interface {
	// Name identifies the channel instance in stats and logs.
	Name() string
	// Deliver sends one event; an error counts as a failed delivery
	// (the manager retries).
	Deliver(Event) error
	// Close releases channel resources.
	Close() error
}

// SubscriptionStats reports one subscription's delivery counters.
type SubscriptionStats struct {
	ID        int64
	Sensor    string
	Channel   string
	Delivered uint64
	Failed    uint64
	Dropped   uint64
}

// Options tunes the manager.
type Options struct {
	// QueueSize bounds each subscription's event queue (default 256).
	QueueSize int
	// Retries is the per-event delivery retry count (default 2).
	Retries int
	// RetryDelay sleeps between retries (default 10ms; tests use 0).
	RetryDelay time.Duration
}

type subscription struct {
	id      int64
	sensor  string // canonical; "" subscribes to every sensor
	channel Channel
	queue   chan Event
	done    chan struct{}

	delivered atomic.Uint64
	failed    atomic.Uint64
	dropped   atomic.Uint64
}

// Manager fans events out to subscriptions.
type Manager struct {
	opts Options

	mu     sync.RWMutex
	subs   map[int64]*subscription
	nextID int64
	seq    map[string]*atomic.Uint64
	closed bool

	pending atomic.Int64 // events enqueued but not yet finished
}

// NewManager creates a notification manager.
func NewManager(opts Options) *Manager {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryDelay == 0 {
		opts.RetryDelay = 10 * time.Millisecond
	}
	return &Manager{
		opts: opts,
		subs: make(map[int64]*subscription),
		seq:  make(map[string]*atomic.Uint64),
	}
}

// Subscribe registers a channel for a sensor's events. An empty sensor
// name subscribes to all sensors. It returns the subscription id.
func (m *Manager) Subscribe(sensor string, ch Channel) (int64, error) {
	if ch == nil {
		return 0, fmt.Errorf("notify: nil channel")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("notify: manager is closed")
	}
	m.nextID++
	sub := &subscription{
		id:      m.nextID,
		sensor:  stream.CanonicalName(sensor),
		channel: ch,
		queue:   make(chan Event, m.opts.QueueSize),
		done:    make(chan struct{}),
	}
	m.subs[sub.id] = sub
	go m.deliverLoop(sub)
	return sub.id, nil
}

// Unsubscribe removes a subscription and closes its channel.
func (m *Manager) Unsubscribe(id int64) error {
	m.mu.Lock()
	sub, ok := m.subs[id]
	delete(m.subs, id)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("notify: no subscription %d", id)
	}
	close(sub.queue)
	<-sub.done
	return sub.channel.Close()
}

// UnsubscribeSensor removes every subscription bound to the sensor
// (used when a virtual sensor is undeployed).
func (m *Manager) UnsubscribeSensor(sensor string) {
	canonical := stream.CanonicalName(sensor)
	m.mu.Lock()
	var victims []*subscription
	for id, sub := range m.subs {
		if sub.sensor == canonical {
			victims = append(victims, sub)
			delete(m.subs, id)
		}
	}
	m.mu.Unlock()
	for _, sub := range victims {
		close(sub.queue)
		<-sub.done
		sub.channel.Close()
	}
}

// Publish fans a new element out to matching subscriptions. It never
// blocks: full queues drop the event for that subscription.
func (m *Manager) Publish(sensor string, e stream.Element) {
	canonical := stream.CanonicalName(sensor)
	m.mu.RLock()
	counter, ok := m.seq[canonical]
	if !ok {
		m.mu.RUnlock()
		m.mu.Lock()
		if m.seq[canonical] == nil {
			m.seq[canonical] = &atomic.Uint64{}
		}
		counter = m.seq[canonical]
		m.mu.Unlock()
		m.mu.RLock()
	}
	ev := Event{Sensor: canonical, Seq: counter.Add(1), Element: e}
	for _, sub := range m.subs {
		if sub.sensor != "" && sub.sensor != canonical {
			continue
		}
		m.pending.Add(1)
		select {
		case sub.queue <- ev:
		default:
			sub.dropped.Add(1)
			m.pending.Add(-1)
		}
	}
	m.mu.RUnlock()
}

func (m *Manager) deliverLoop(sub *subscription) {
	defer close(sub.done)
	policy := resilience.Policy{
		Base:        m.opts.RetryDelay,
		Cap:         4 * m.opts.RetryDelay,
		MaxAttempts: m.opts.Retries,
		Seed:        sub.id,
	}
	for ev := range sub.queue {
		err := resilience.Do(nil, policy, func() error {
			return sub.channel.Deliver(ev)
		})
		if err != nil {
			sub.failed.Add(1)
		} else {
			sub.delivered.Add(1)
		}
		m.pending.Add(-1)
	}
}

// Flush blocks until all enqueued events have been delivered (or
// dropped/failed), up to the timeout. It returns false on timeout.
// Tests and graceful shutdown use it.
func (m *Manager) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for m.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stats lists per-subscription delivery counters, ordered by id.
func (m *Manager) Stats() []SubscriptionStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]SubscriptionStats, 0, len(m.subs))
	for _, sub := range m.subs {
		out = append(out, SubscriptionStats{
			ID:        sub.id,
			Sensor:    sub.sensor,
			Channel:   sub.channel.Name(),
			Delivered: sub.delivered.Load(),
			Failed:    sub.failed.Load(),
			Dropped:   sub.dropped.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close shuts down every subscription.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	subs := make([]*subscription, 0, len(m.subs))
	for id, sub := range m.subs {
		subs = append(subs, sub)
		delete(m.subs, id)
	}
	m.mu.Unlock()
	var first error
	for _, sub := range subs {
		close(sub.queue)
		<-sub.done
		if err := sub.channel.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
