package notify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// EventJSON is the wire form of an event used by the file and webhook
// channels and by the web interface's subscription endpoint.
type EventJSON struct {
	Sensor    string         `json:"sensor"`
	Seq       uint64         `json:"seq"`
	Timestamp int64          `json:"timestamp"`
	Values    map[string]any `json:"values"`
}

// MarshalEvent converts an Event to its JSON form. Byte payloads are
// summarised as their length to keep notifications small (clients fetch
// payloads through the data API).
func MarshalEvent(ev Event) ([]byte, error) {
	values := make(map[string]any, ev.Element.Len())
	schema := ev.Element.Schema()
	for i := 0; i < ev.Element.Len(); i++ {
		v := ev.Element.Value(i)
		if b, ok := v.([]byte); ok {
			v = fmt.Sprintf("<%d bytes>", len(b))
		}
		values[schema.Field(i).Name] = v
	}
	return json.Marshal(EventJSON{
		Sensor:    ev.Sensor,
		Seq:       ev.Seq,
		Timestamp: int64(ev.Element.Timestamp()),
		Values:    values,
	})
}

// FuncChannel adapts a function to the Channel interface (the in-process
// channel used by Subscribe APIs and tests).
type FuncChannel struct {
	ChannelName string
	Fn          func(Event) error
}

// Name implements Channel.
func (c FuncChannel) Name() string {
	if c.ChannelName != "" {
		return c.ChannelName
	}
	return "func"
}

// Deliver implements Channel.
func (c FuncChannel) Deliver(ev Event) error { return c.Fn(ev) }

// Close implements Channel.
func (c FuncChannel) Close() error { return nil }

// ChanChannel forwards events into a Go channel; delivery fails when the
// receiver is not keeping up (non-blocking send).
type ChanChannel struct {
	C chan Event
}

// NewChanChannel creates a buffered ChanChannel.
func NewChanChannel(buffer int) *ChanChannel {
	if buffer <= 0 {
		buffer = 16
	}
	return &ChanChannel{C: make(chan Event, buffer)}
}

// Name implements Channel.
func (c *ChanChannel) Name() string { return "chan" }

// Deliver implements Channel.
func (c *ChanChannel) Deliver(ev Event) error {
	select {
	case c.C <- ev:
		return nil
	default:
		return fmt.Errorf("notify: receiver not draining channel")
	}
}

// Close implements Channel.
func (c *ChanChannel) Close() error {
	close(c.C)
	return nil
}

// LogChannel writes one line per event to a writer (GSN's console
// notification).
type LogChannel struct {
	mu sync.Mutex
	W  io.Writer
}

// NewLogChannel creates a LogChannel; w defaults to os.Stdout.
func NewLogChannel(w io.Writer) *LogChannel {
	if w == nil {
		w = os.Stdout
	}
	return &LogChannel{W: w}
}

// Name implements Channel.
func (c *LogChannel) Name() string { return "log" }

// Deliver implements Channel.
func (c *LogChannel) Deliver(ev Event) error {
	data, err := MarshalEvent(ev)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = fmt.Fprintf(c.W, "notify %s #%d %s\n", ev.Sensor, ev.Seq, data)
	return err
}

// Close implements Channel.
func (c *LogChannel) Close() error { return nil }

// FileChannel appends JSON-lines events to a file.
type FileChannel struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// NewFileChannel opens (creating if needed) the file for appending.
func NewFileChannel(path string) (*FileChannel, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileChannel{f: f, path: path}, nil
}

// Name implements Channel.
func (c *FileChannel) Name() string { return "file:" + c.path }

// Deliver implements Channel.
func (c *FileChannel) Deliver(ev Event) error {
	data, err := MarshalEvent(ev)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = c.f.Write(append(data, '\n'))
	return err
}

// Close implements Channel.
func (c *FileChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// WebhookChannel POSTs events as JSON to a URL — the paper's
// "customize it to any required notification channel" hook for HTTP
// clients.
type WebhookChannel struct {
	URL    string
	Client *http.Client
}

// NewWebhookChannel creates a webhook channel with a sane default
// timeout.
func NewWebhookChannel(url string) *WebhookChannel {
	return &WebhookChannel{URL: url, Client: &http.Client{Timeout: 5 * time.Second}}
}

// Name implements Channel.
func (c *WebhookChannel) Name() string { return "webhook:" + c.URL }

// Deliver implements Channel.
func (c *WebhookChannel) Deliver(ev Event) error {
	data, err := MarshalEvent(ev)
	if err != nil {
		return err
	}
	resp, err := c.Client.Post(c.URL, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("notify: webhook %s returned %s", c.URL, resp.Status)
	}
	return nil
}

// Close implements Channel.
func (c *WebhookChannel) Close() error { return nil }
