package wrappers

import (
	"sync"
	"time"
)

// pacer runs a Producer on a fixed real-time interval, delivering
// readings through the emit function. Wrappers embed it to get
// Start/Stop for free; an interval of zero disables autonomous
// production (the wrapper is then driven via Produce by the caller).
type pacer struct {
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// start launches the production loop. produce is called once per tick;
// ErrNoReading skips the tick, any other error stops the loop (the
// container's life-cycle manager observes the silence via the stream
// quality layer and restarts the wrapper).
func (p *pacer) start(produce func() error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	p.started = true
	if p.interval <= 0 {
		return nil // pull-only wrapper
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := produce(); err != nil && err != ErrNoReading {
					return
				}
			}
		}
	}(p.stop, p.done)
	return nil
}

// halt stops the loop and waits for it to exit.
func (p *pacer) halt() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return nil
	}
	p.started = false
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop, p.done = nil, nil
	}
	return nil
}
