package wrappers

import (
	"sync"
	"time"

	"gsn/internal/stream"
)

// pacer runs a Producer on a fixed real-time interval, delivering
// readings through the emit function. Wrappers embed it to get
// Start/Stop for free; an interval of zero disables autonomous
// production (the wrapper is then driven via Produce by the caller).
// With batch > 1 each tick drains up to batch readings and delivers
// them as one burst (the wrapper's descriptor batch parameter).
type pacer struct {
	interval time.Duration
	batch    int

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// start launches the production loop. produce is called once per tick;
// ErrNoReading skips the tick, any other error stops the loop (the
// container's life-cycle manager observes the silence via the stream
// quality layer and restarts the wrapper).
func (p *pacer) start(produce func() error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	p.started = true
	if p.interval <= 0 {
		return nil // pull-only wrapper
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := produce(); err != nil && err != ErrNoReading {
					return
				}
			}
		}
	}(p.stop, p.done)
	return nil
}

// startBatch launches the production loop in burst mode: each tick
// pulls up to p.batch readings in one call and hands them downstream as
// a single batch. Wrappers implementing BatchEmitter route StartBatch
// here when a batch size is configured.
func (p *pacer) startBatch(produceBatch func(max int) ([]stream.Element, error), emitBatch BatchEmitFunc) error {
	max := p.batch
	if max < 1 {
		max = 1
	}
	return p.start(func() error {
		elems, err := produceBatch(max)
		// A mid-batch producer error still delivers the prefix that was
		// produced — the per-element pacer would already have emitted
		// those readings on their own ticks.
		if len(elems) > 0 {
			emitBatch(elems)
		}
		return err
	})
}

// configureBatch reads the shared batch parameter (per-tick burst size,
// default 1).
func (p *pacer) configureBatch(params Params) error {
	batch, err := params.Int("batch", 1)
	if err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	p.batch = batch
	return nil
}

// halt stops the loop and waits for it to exit.
func (p *pacer) halt() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return nil
	}
	p.started = false
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop, p.done = nil, nil
	}
	return nil
}
