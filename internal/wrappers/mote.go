package wrappers

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"gsn/internal/stream"
)

// MoteWrapper simulates a TinyOS-family mote (Mica2, Mica2Dot, TinyNode
// — the platforms the paper deploys) with light, temperature and 2-axis
// acceleration sensors. Readings follow a seeded random walk around
// realistic baselines so runs are reproducible.
//
// Parameters:
//
//	interval     production period (default "1s"; 0 = pull-only)
//	batch        readings produced per tick as one burst (default 1),
//	             simulating a packet train from the radio
//	sensors      comma list of light,temperature,accel (default
//	             "light,temperature")
//	node-id      integer id reported in the NODE_ID field (default 1)
//	platform     free-text platform tag (default "mica2")
//	temperature  baseline °C (default 22)
//	light        baseline lux (default 500)
//	failure-rate probability a poll returns nothing, simulating radio
//	             loss (default 0)
type MoteWrapper struct {
	pacer
	cfg      Config
	schema   *stream.Schema
	sensors  []string
	nodeID   int64
	platform string

	mu       sync.Mutex
	rng      *rand.Rand
	temp     float64
	light    float64
	ax, ay   float64
	failRate float64
	emit     EmitFunc
}

// NewMote builds a MoteWrapper from config.
func NewMote(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", defaultMoteInterval)
	if err != nil {
		return nil, err
	}
	nodeID, err := cfg.Params.Int("node-id", 1)
	if err != nil {
		return nil, err
	}
	baseTemp, err := cfg.Params.Float("temperature", 22)
	if err != nil {
		return nil, err
	}
	baseLight, err := cfg.Params.Float("light", 500)
	if err != nil {
		return nil, err
	}
	failRate, err := cfg.Params.Float("failure-rate", 0)
	if err != nil {
		return nil, err
	}
	if failRate < 0 || failRate >= 1 {
		return nil, fmt.Errorf("wrappers: mote failure-rate %v outside [0,1)", failRate)
	}

	sensorList := strings.Split(cfg.Params.Get("sensors", "light,temperature"), ",")
	fields := []stream.Field{{Name: "node_id", Type: stream.TypeInt}}
	var sensors []string
	for _, s := range sensorList {
		s = strings.ToLower(strings.TrimSpace(s))
		switch s {
		case "light":
			fields = append(fields, stream.Field{Name: "light", Type: stream.TypeInt, Description: "ambient light (lux)"})
		case "temperature":
			fields = append(fields, stream.Field{Name: "temperature", Type: stream.TypeInt, Description: "temperature (0.1 °C units)"})
		case "accel":
			fields = append(fields,
				stream.Field{Name: "accel_x", Type: stream.TypeFloat, Description: "x acceleration (g)"},
				stream.Field{Name: "accel_y", Type: stream.TypeFloat, Description: "y acceleration (g)"})
		case "":
			continue
		default:
			return nil, fmt.Errorf("wrappers: mote has no sensor %q", s)
		}
		sensors = append(sensors, s)
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("wrappers: mote needs at least one sensor")
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	m := &MoteWrapper{
		cfg:      cfg,
		schema:   schema,
		sensors:  sensors,
		nodeID:   int64(nodeID),
		platform: cfg.Params.Get("platform", "mica2"),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		temp:     baseTemp,
		light:    baseLight,
		failRate: failRate,
	}
	m.pacer.interval = interval
	if err := m.pacer.configureBatch(cfg.Params); err != nil {
		return nil, err
	}
	return m, nil
}

const defaultMoteInterval = 0 // pull-only unless configured; descriptors set rates explicitly

// Kind implements Wrapper.
func (m *MoteWrapper) Kind() string { return "mote" }

// Schema implements Wrapper.
func (m *MoteWrapper) Schema() *stream.Schema { return m.schema }

// Platform returns the simulated hardware tag.
func (m *MoteWrapper) Platform() string { return m.platform }

// Start implements Wrapper.
func (m *MoteWrapper) Start(emit EmitFunc) error {
	m.mu.Lock()
	m.emit = emit
	m.mu.Unlock()
	return m.pacer.start(func() error {
		e, err := m.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// StartBatch implements BatchEmitter: with a batch parameter > 1 each
// tick delivers a packet train of readings as one burst.
func (m *MoteWrapper) StartBatch(emit EmitFunc, emitBatch BatchEmitFunc) error {
	if m.pacer.batch <= 1 {
		return m.Start(emit)
	}
	m.mu.Lock()
	m.emit = emit
	m.mu.Unlock()
	return m.pacer.startBatch(m.ProduceBatch, emitBatch)
}

// Stop implements Wrapper.
func (m *MoteWrapper) Stop() error { return m.pacer.halt() }

// Produce implements Producer: one seeded random-walk reading.
func (m *MoteWrapper) Produce() (stream.Element, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.produceLocked()
}

// ProduceBatch implements BatchProducer: up to max readings of the
// random walk under one lock acquisition. Lost polls (failure-rate)
// thin the batch exactly as they would thin individual polls.
func (m *MoteWrapper) ProduceBatch(max int) ([]stream.Element, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []stream.Element
	for i := 0; i < max; i++ {
		e, err := m.produceLocked()
		if err == ErrNoReading {
			continue // radio loss drops this poll, not the burst
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, ErrNoReading
	}
	return out, nil
}

func (m *MoteWrapper) produceLocked() (stream.Element, error) {
	if m.failRate > 0 && m.rng.Float64() < m.failRate {
		return stream.Element{}, ErrNoReading
	}
	// Random walks with mild mean reversion keep values realistic over
	// arbitrarily long runs.
	m.temp += m.rng.NormFloat64()*0.2 + (22-m.temp)*0.01
	m.light += m.rng.NormFloat64()*15 + (500-m.light)*0.02
	if m.light < 0 {
		m.light = 0
	}
	m.ax = m.ax*0.8 + m.rng.NormFloat64()*0.05
	m.ay = m.ay*0.8 + m.rng.NormFloat64()*0.05

	values := []stream.Value{m.nodeID}
	for _, s := range m.sensors {
		switch s {
		case "light":
			values = append(values, int64(m.light))
		case "temperature":
			values = append(values, int64(m.temp*10))
		case "accel":
			values = append(values, m.ax, m.ay)
		}
	}
	return stream.NewElement(m.schema, m.cfg.Clock.Now(), values...)
}

func init() {
	if err := Register("mote", NewMote); err != nil {
		panic(err)
	}
}
