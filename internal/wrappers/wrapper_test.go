package wrappers

import (
	"sync"
	"testing"
	"time"

	"gsn/internal/stream"
)

func TestRegistryRegisterNewKinds(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("x", NewTimer); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("x", NewTimer); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register("", NewTimer); err == nil {
		t.Error("empty kind accepted")
	}
	if err := r.Register("y", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := r.New("missing", Config{}); err == nil {
		t.Error("unknown kind instantiated")
	}
	w, err := r.New("x", Config{Name: "t1"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if w.Kind() != "timer" {
		t.Errorf("kind = %q", w.Kind())
	}
}

func TestDefaultRegistryHasBuiltins(t *testing.T) {
	kinds := Kinds()
	want := []string{"camera", "csv", "mote", "push", "random-walk", "rfid", "system", "timer"}
	have := map[string]bool{}
	for _, k := range kinds {
		have[k] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Errorf("builtin wrapper %q missing from %v", k, kinds)
		}
	}
}

func TestParamsParsing(t *testing.T) {
	p := Params{"i": "42", "f": "2.5", "d1": "250", "d2": "3s", "b": "true", "s": "x"}
	if v, err := p.Int("i", 0); err != nil || v != 42 {
		t.Errorf("Int = %v, %v", v, err)
	}
	if v, err := p.Int("missing", 7); err != nil || v != 7 {
		t.Errorf("Int default = %v, %v", v, err)
	}
	if _, err := p.Int("s", 0); err == nil {
		t.Error("Int accepted non-integer")
	}
	if v, err := p.Float("f", 0); err != nil || v != 2.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if v, err := p.Duration("d1", 0); err != nil || v != 250*time.Millisecond {
		t.Errorf("Duration(ms) = %v, %v", v, err)
	}
	if v, err := p.Duration("d2", 0); err != nil || v != 3*time.Second {
		t.Errorf("Duration(s) = %v, %v", v, err)
	}
	if v, err := p.Bool("b", false); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if got := p.Get("s", "d"); got != "x" {
		t.Errorf("Get = %q", got)
	}
	if got := p.Get("nope", "d"); got != "d" {
		t.Errorf("Get default = %q", got)
	}
}

func TestMoteDeterministicWithSeed(t *testing.T) {
	mk := func() Wrapper {
		w, err := New("mote", Config{Name: "m", Seed: 99, Clock: stream.NewManualClock(1000),
			Params: Params{"sensors": "light,temperature,accel"}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return w
	}
	a, b := mk().(Producer), mk().(Producer)
	for i := 0; i < 50; i++ {
		ea, err1 := a.Produce()
		eb, err2 := b.Produce()
		if err1 != nil || err2 != nil {
			t.Fatalf("Produce: %v %v", err1, err2)
		}
		for j := 0; j < ea.Len(); j++ {
			if !stream.ValuesEqual(ea.Value(j), eb.Value(j)) {
				t.Fatalf("iteration %d field %d: %v != %v", i, j, ea.Value(j), eb.Value(j))
			}
		}
	}
}

func TestMoteSchemaSelection(t *testing.T) {
	w, err := New("mote", Config{Name: "m", Params: Params{"sensors": "accel"}})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema()
	if s.IndexOf("accel_x") < 0 || s.IndexOf("accel_y") < 0 {
		t.Errorf("accel schema = %s", s)
	}
	if s.IndexOf("light") >= 0 {
		t.Errorf("light should be absent: %s", s)
	}
	if _, err := New("mote", Config{Params: Params{"sensors": "sonar"}}); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := New("mote", Config{Params: Params{"sensors": ","}}); err == nil {
		t.Error("empty sensor list accepted")
	}
	if _, err := New("mote", Config{Params: Params{"failure-rate": "1.5"}}); err == nil {
		t.Error("failure-rate out of range accepted")
	}
}

func TestMoteValuesPlausible(t *testing.T) {
	w, _ := New("mote", Config{Name: "m", Seed: 5, Clock: stream.NewManualClock(0)})
	p := w.(Producer)
	for i := 0; i < 200; i++ {
		e, err := p.Produce()
		if err != nil {
			t.Fatal(err)
		}
		temp, _ := e.ValueByName("temperature")
		if tv := temp.(int64); tv < 100 || tv > 350 {
			t.Fatalf("temperature %d outside 10–35°C band", tv)
		}
		light, _ := e.ValueByName("light")
		if lv := light.(int64); lv < 0 || lv > 2000 {
			t.Fatalf("light %d implausible", lv)
		}
	}
}

func TestMoteFailureRate(t *testing.T) {
	w, _ := New("mote", Config{Name: "m", Seed: 7, Params: Params{"failure-rate": "0.5"}})
	p := w.(Producer)
	var misses int
	for i := 0; i < 400; i++ {
		if _, err := p.Produce(); err == ErrNoReading {
			misses++
		}
	}
	if misses < 100 || misses > 300 {
		t.Errorf("misses = %d of 400, want ≈200", misses)
	}
}

func TestCameraPayloadSizes(t *testing.T) {
	for _, spec := range []string{"15B", "50B", "100B", "16KB", "32KB", "75KB"} {
		w, err := New("camera", Config{Name: "c", Params: Params{"payload": spec}})
		if err != nil {
			t.Fatalf("New(%s): %v", spec, err)
		}
		want, _ := ParseByteSize(spec)
		if want < 16 {
			want = 16 // minimum frame
		}
		e, err := w.(Producer).Produce()
		if err != nil {
			t.Fatal(err)
		}
		img, _ := e.ValueByName("image")
		if got := len(img.([]byte)); got != want {
			t.Errorf("payload %s produced %d bytes, want %d", spec, got, want)
		}
	}
}

func TestCameraFramesDiffer(t *testing.T) {
	w, _ := New("camera", Config{Name: "c", Params: Params{"payload": "1KB"}})
	p := w.(Producer)
	e1, _ := p.Produce()
	e2, _ := p.Produce()
	f1, _ := e1.ValueByName("frame")
	f2, _ := e2.ValueByName("frame")
	if f1 == f2 {
		t.Error("frame counter did not advance")
	}
	i1, _ := e1.ValueByName("image")
	i2, _ := e2.ValueByName("image")
	if stream.ValuesEqual(i1, i2) {
		t.Error("consecutive frames are identical")
	}
	// Each element owns its payload: mutating one must not affect the other.
	i1.([]byte)[20]++
	e1b, _ := e1.ValueByName("image")
	if !stream.ValuesEqual(i1, e1b) {
		t.Error("element does not share its own buffer") // sanity
	}
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int{
		"15": 15, "15B": 15, "16KB": 16384, "2MB": 2 << 20, " 75 KB ": 75 * 1024, "0": 0,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "-5", "KB"} {
		if _, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded", in)
		}
	}
}

func TestRFIDPresenceAndDwell(t *testing.T) {
	w, _ := New("rfid", Config{Name: "r", Seed: 3, Params: Params{"presence": "0.5", "tags": "4"}})
	p := w.(Producer)
	var hits int
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		e, err := p.Produce()
		if err == ErrNoReading {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		hits++
		tag, _ := e.ValueByName("tag_id")
		seen[tag.(string)] = true
		rssi, _ := e.ValueByName("rssi")
		if rv := rssi.(int64); rv > -40 || rv < -70 {
			t.Fatalf("rssi %d outside [-70,-40]", rv)
		}
	}
	if hits == 0 || hits == 500 {
		t.Errorf("hits = %d, want a mix of reads and misses", hits)
	}
	if len(seen) < 2 {
		t.Errorf("only saw tags %v from a population of 4", seen)
	}
}

func TestRFIDInjectTag(t *testing.T) {
	w, _ := New("rfid", Config{Name: "r", Seed: 3, Params: Params{"presence": "0"}})
	r := w.(*RFIDWrapper)
	if _, err := r.Produce(); err != ErrNoReading {
		t.Fatalf("presence=0 should never read, got %v", err)
	}
	r.InjectTag(2)
	e, err := r.Produce()
	if err != nil {
		t.Fatalf("after inject: %v", err)
	}
	tag, _ := e.ValueByName("tag_id")
	if tag != "tag-0002" {
		t.Errorf("tag = %v", tag)
	}
}

func TestRFIDValidation(t *testing.T) {
	if _, err := New("rfid", Config{Params: Params{"tags": "0"}}); err == nil {
		t.Error("zero tag population accepted")
	}
	if _, err := New("rfid", Config{Params: Params{"presence": "2"}}); err == nil {
		t.Error("presence > 1 accepted")
	}
}

func TestTimerTicks(t *testing.T) {
	clock := stream.NewManualClock(500)
	w, _ := New("timer", Config{Name: "t", Clock: clock})
	p := w.(Producer)
	e1, _ := p.Produce()
	e2, _ := p.Produce()
	t1, _ := e1.ValueByName("tick")
	t2, _ := e2.ValueByName("tick")
	if t1 != int64(1) || t2 != int64(2) {
		t.Errorf("ticks = %v, %v", t1, t2)
	}
	now, _ := e1.ValueByName("now")
	if now != int64(500) {
		t.Errorf("now = %v", now)
	}
}

func TestRandomWalkBounds(t *testing.T) {
	w, err := New("random-walk", Config{Name: "rw", Seed: 1,
		Params: Params{"fields": "a,b", "min": "-5", "max": "5", "step": "3"}})
	if err != nil {
		t.Fatal(err)
	}
	p := w.(Producer)
	for i := 0; i < 300; i++ {
		e, err := p.Produce()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < e.Len(); j++ {
			v := e.Value(j).(float64)
			if v < -5 || v > 5 {
				t.Fatalf("value %v escaped clamp bounds", v)
			}
		}
	}
	if _, err := New("random-walk", Config{Params: Params{"min": "5", "max": "5"}}); err == nil {
		t.Error("degenerate bounds accepted")
	}
}

func TestSystemWrapperProduces(t *testing.T) {
	w, _ := New("system", Config{Name: "sys"})
	e, err := w.(Producer).Produce()
	if err != nil {
		t.Fatal(err)
	}
	heap, _ := e.ValueByName("heap_alloc")
	if heap.(int64) <= 0 {
		t.Errorf("heap_alloc = %v", heap)
	}
}

func TestPushWrapper(t *testing.T) {
	w, err := New("push", Config{Name: "p",
		Params: Params{"fields": "temperature:integer,label:varchar"}})
	if err != nil {
		t.Fatal(err)
	}
	pw := w.(*PushWrapper)
	if err := pw.Push(int64(1), "x"); err == nil {
		t.Error("Push before Start succeeded")
	}
	var mu sync.Mutex
	var got []stream.Element
	w.Start(func(e stream.Element) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	if err := pw.Push(int64(21), "ok"); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := pw.Push("not-an-int", "bad"); err == nil {
		t.Error("Push accepted type-mismatched values")
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("emitted %d elements", n)
	}
	if _, err := New("push", Config{}); err == nil {
		t.Error("push without fields accepted")
	}
	if _, err := New("push", Config{Params: Params{"fields": "bad"}}); err == nil {
		t.Error("malformed field spec accepted")
	}
}

func TestPacedProductionRealTime(t *testing.T) {
	w, err := New("timer", Config{Name: "t", Params: Params{"interval": "5"}}) // 5 ms
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	if err := w.Start(func(stream.Element) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := count
	mu.Unlock()
	if n < 3 {
		t.Errorf("paced wrapper produced %d elements in 60ms at 5ms interval", n)
	}
	// Stop must be idempotent and production must cease.
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	after := count
	mu.Unlock()
	if after != n {
		t.Errorf("production continued after Stop: %d → %d", n, after)
	}
}
