package wrappers

import (
	"os"
	"path/filepath"
	"testing"

	"gsn/internal/stream"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCSVReplay(t *testing.T) {
	path := writeCSV(t, "temperature,label\n21,a\n22,b\n,c\n")
	w, err := New("csv", Config{Name: "c", Clock: stream.NewManualClock(0),
		Params: Params{"file": path, "types": "integer,varchar"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := w.(Producer)
	e1, err := p.Produce()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e1.ValueByName("temperature"); v != int64(21) {
		t.Errorf("row1 temperature = %v", v)
	}
	p.Produce() // row 2
	e3, err := p.Produce()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e3.ValueByName("temperature"); v != nil {
		t.Errorf("empty cell should be NULL, got %v", v)
	}
	if _, err := p.Produce(); err != ErrNoReading {
		t.Errorf("exhausted replay should return ErrNoReading, got %v", err)
	}
}

func TestCSVLoop(t *testing.T) {
	path := writeCSV(t, "v\n1\n2\n")
	w, _ := New("csv", Config{Name: "c",
		Params: Params{"file": path, "types": "integer", "loop": "true"}})
	p := w.(Producer)
	for i := 0; i < 7; i++ {
		if _, err := p.Produce(); err != nil {
			t.Fatalf("loop iteration %d: %v", i, err)
		}
	}
	if w.(*CSVWrapper).Remaining() < 0 {
		t.Error("Remaining went negative")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := New("csv", Config{}); err == nil {
		t.Error("csv without file accepted")
	}
	if _, err := New("csv", Config{Params: Params{"file": "/nonexistent/x.csv"}}); err == nil {
		t.Error("missing file accepted")
	}
	empty := writeCSV(t, "")
	if _, err := New("csv", Config{Params: Params{"file": empty}}); err == nil {
		t.Error("empty csv accepted")
	}
	badType := writeCSV(t, "v\nx\n")
	w, err := New("csv", Config{Params: Params{"file": badType, "types": "integer"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.(Producer).Produce(); err == nil {
		t.Error("non-integer cell coerced silently")
	}
}
