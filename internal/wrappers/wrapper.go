// Package wrappers implements GSN's platform abstraction (paper §5):
// a wrapper adapts one sensor platform to the middleware by producing
// timestamped stream elements. The original GSN shipped Java/C wrappers
// for TinyOS motes, wireless cameras and RFID readers; this package
// provides deterministic simulations of those platforms (the paper's
// experiments only require the devices as timed producers of elements
// of a given size — see DESIGN.md §1) plus generic utility wrappers.
//
// Adding a platform means implementing Wrapper (typically 100–200 lines,
// matching the paper's reported effort) and registering a factory.
package wrappers

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"gsn/internal/stream"
)

// EmitFunc delivers one produced element downstream (into the
// container's input stream manager).
type EmitFunc func(stream.Element)

// BatchEmitFunc delivers a burst of produced elements downstream as one
// batch, in arrival order. Ownership of the slice passes to the callee;
// the wrapper must not reuse it after emitting.
type BatchEmitFunc func([]stream.Element)

// Wrapper is the platform adaptation interface. Implementations must be
// safe for the container to Start and Stop from different goroutines.
type Wrapper interface {
	// Kind returns the wrapper type identifier (e.g. "mote").
	Kind() string
	// Schema describes the elements the wrapper produces.
	Schema() *stream.Schema
	// Start begins production, delivering elements through emit until
	// Stop is called. Start must not block.
	Start(emit EmitFunc) error
	// Stop halts production and releases resources. It blocks until the
	// production goroutine has exited and is idempotent.
	Stop() error
}

// Producer is implemented by pull-capable wrappers: Produce generates
// the next reading synchronously. The container's tests, the benchmark
// harness and manual-clock simulations use it to drive wrappers
// deterministically without real-time pacing.
type Producer interface {
	// Produce returns the next reading. It returns ErrNoReading when
	// the device has nothing to report this poll (e.g. an RFID reader
	// with no tag in range).
	Produce() (stream.Element, error)
}

// BatchEmitter is the optional burst capability of the wrapper
// contract: a wrapper that naturally produces several elements at once
// (a replayed file, a radio packet train, a long-poll fetch) delivers
// them through emitBatch so the whole burst crosses the quality chain
// and the window table with one lock acquisition and one WAL group
// append. The container prefers StartBatch over Start when a wrapper
// implements it; a wrapper may still use emit for single readings.
type BatchEmitter interface {
	Wrapper
	// StartBatch begins production like Start, delivering bursts
	// through emitBatch (slice ownership passes to the callee) and
	// single readings through emit. It must not block.
	StartBatch(emit EmitFunc, emitBatch BatchEmitFunc) error
}

// BatchProducer is the pull-capable burst form: ProduceBatch generates
// up to max readings synchronously in one call. Like Produce it returns
// ErrNoReading when the device has nothing at all to report.
type BatchProducer interface {
	Producer
	ProduceBatch(max int) ([]stream.Element, error)
}

// ProduceUpTo drains a Producer into a burst of at most max elements,
// stopping at the first empty poll. It returns ErrNoReading only when
// nothing at all was produced — wrappers without a cheaper native batch
// use it to satisfy BatchProducer.
func ProduceUpTo(p Producer, max int) ([]stream.Element, error) {
	var out []stream.Element
	for len(out) < max {
		e, err := p.Produce()
		if err == ErrNoReading {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, ErrNoReading
	}
	return out, nil
}

// ErrNoReading signals an empty poll from a Producer.
var ErrNoReading = fmt.Errorf("wrappers: no reading available")

// ReplicationStats are the exactly-once delivery counters of a wrapper
// that replicates a remote stream (the p2p remote wrapper).
type ReplicationStats struct {
	// Fetches/Failures count long-poll attempts and transport errors.
	Fetches, Failures uint64
	// Resyncs counts cursor rewinds to the peer's window start;
	// EpochMismatches counts the subset caused by an observed epoch
	// change (peer restart or truncate — the rest are raw sequence
	// regressions, e.g. a peer whose epoch persistence was lost).
	Resyncs, EpochMismatches uint64
	// DuplicatesDropped counts re-delivered elements the consumer-side
	// dedup suppressed (retries after torn responses, re-syncs).
	DuplicatesDropped uint64
	// Connected reports whether the last fetch succeeded.
	Connected bool
}

// Replicator is implemented by wrappers that replicate a remote stream
// and account for exactly-once delivery. The container aggregates these
// counters into its metrics endpoint.
type Replicator interface {
	ReplicationStats() ReplicationStats
}

// HealthReporter is implemented by wrappers that can judge their own
// connection health (e.g. a remote wrapper counting consecutive fetch
// failures). The container folds a degraded report into the sensor's
// health ladder without restarting the wrapper — unlike a silent
// source, a disconnected peer is not fixed by a local restart.
type HealthReporter interface {
	// HealthState returns degraded=true with a reason while the wrapper
	// considers its upstream link unhealthy.
	HealthState() (degraded bool, reason string)
}

// Config configures one wrapper instance.
type Config struct {
	// Name is the instance name (the stream source alias, for logs).
	Name string
	// Params carries the key/value pairs from the descriptor's
	// <address> element.
	Params Params
	// Seed makes simulated devices deterministic. Zero means derive
	// from Name.
	Seed int64
	// Clock stamps produced elements; nil means the system clock.
	Clock stream.Clock
}

// normalise fills defaults.
func (c Config) normalise() Config {
	if c.Clock == nil {
		c.Clock = stream.SystemClock()
	}
	if c.Params == nil {
		c.Params = Params{}
	}
	if c.Seed == 0 {
		var h int64 = 1469598103934665603
		for _, b := range []byte(c.Name) {
			h ^= int64(b)
			h *= 1099511628211
		}
		if h == 0 {
			h = 1
		}
		c.Seed = h
	}
	return c
}

// Params is the wrapper parameter map (string-typed, as parsed from the
// XML descriptor's predicate list).
type Params map[string]string

// Get returns the value for key or def when absent/empty.
func (p Params) Get(key, def string) string {
	if v, ok := p[key]; ok && v != "" {
		return v
	}
	return def
}

// Int parses an integer parameter.
func (p Params) Int(key string, def int) (int, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("wrappers: parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

// Float parses a float parameter.
func (p Params) Float(key string, def float64) (float64, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("wrappers: parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

// Duration parses a duration parameter ("500ms", "2s", or a bare
// millisecond count).
func (p Params) Duration(key string, def time.Duration) (time.Duration, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	if ms, err := strconv.Atoi(v); err == nil {
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("wrappers: parameter %s=%q is not a duration", key, v)
	}
	return d, nil
}

// Bool parses a boolean parameter.
func (p Params) Bool(key string, def bool) (bool, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("wrappers: parameter %s=%q is not a boolean", key, v)
	}
	return b, nil
}

// Factory creates a wrapper instance from a config.
type Factory func(Config) (Wrapper, error)

// Registry maps wrapper kinds to factories.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under kind. Registering a duplicate kind is an
// error (wrapper kinds are a global namespace in descriptors).
func (r *Registry) Register(kind string, f Factory) error {
	if kind == "" || f == nil {
		return fmt.Errorf("wrappers: invalid registration for kind %q", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[kind]; dup {
		return fmt.Errorf("wrappers: kind %q already registered", kind)
	}
	r.factories[kind] = f
	return nil
}

// New instantiates a wrapper of the given kind.
func (r *Registry) New(kind string, cfg Config) (Wrapper, error) {
	r.mu.RLock()
	f, ok := r.factories[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wrappers: unknown wrapper kind %q (known: %v)", kind, r.Kinds())
	}
	return f(cfg.normalise())
}

// Clone returns a new registry with the same factories. Containers
// clone the default registry to add node-specific wrappers (e.g. the
// remote wrapper bound to the node's directory) without mutating global
// state.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := NewRegistry()
	for k, f := range r.factories {
		out.factories[k] = f
	}
	return out
}

// Kinds lists registered kinds, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry holds the built-in wrappers; packages providing
// additional kinds (e.g. the p2p remote wrapper) register here from
// their init functions.
var defaultRegistry = NewRegistry()

// Register adds a factory to the default registry.
func Register(kind string, f Factory) error { return defaultRegistry.Register(kind, f) }

// New instantiates from the default registry.
func New(kind string, cfg Config) (Wrapper, error) { return defaultRegistry.New(kind, cfg) }

// Kinds lists the default registry's kinds.
func Kinds() []string { return defaultRegistry.Kinds() }

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
