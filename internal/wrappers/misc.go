package wrappers

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"gsn/internal/stream"
)

// TimerWrapper emits a monotonically increasing tick counter — GSN's
// classic "clock" wrapper, used to build time-triggered virtual sensors.
//
// Parameters: interval (default "1s").
type TimerWrapper struct {
	pacer
	cfg    Config
	mu     sync.Mutex
	tick   int64
	schema *stream.Schema
}

var timerSchema = stream.MustSchema(
	stream.Field{Name: "tick", Type: stream.TypeInt},
	stream.Field{Name: "now", Type: stream.TypeTime},
)

// NewTimer builds a TimerWrapper.
func NewTimer(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	t := &TimerWrapper{cfg: cfg, schema: timerSchema}
	t.pacer.interval = interval
	return t, nil
}

// Kind implements Wrapper.
func (t *TimerWrapper) Kind() string { return "timer" }

// Schema implements Wrapper.
func (t *TimerWrapper) Schema() *stream.Schema { return t.schema }

// Start implements Wrapper.
func (t *TimerWrapper) Start(emit EmitFunc) error {
	return t.pacer.start(func() error {
		e, err := t.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// Stop implements Wrapper.
func (t *TimerWrapper) Stop() error { return t.pacer.halt() }

// Produce implements Producer.
func (t *TimerWrapper) Produce() (stream.Element, error) {
	t.mu.Lock()
	t.tick++
	tick := t.tick
	t.mu.Unlock()
	now := t.cfg.Clock.Now()
	return stream.NewElement(t.schema, now, tick, int64(now))
}

// RandomWalkWrapper produces one or more numeric fields following
// seeded random walks; it is the generic test/load generator.
//
// Parameters:
//
//	interval  (default 0 = pull-only)
//	fields    comma list of field names (default "value")
//	min, max  clamp bounds (defaults 0, 100)
//	step      walk step scale (default 1)
type RandomWalkWrapper struct {
	pacer
	cfg    Config
	schema *stream.Schema

	mu       sync.Mutex
	rng      *rand.Rand
	state    []float64
	min, max float64
	step     float64
}

// NewRandomWalk builds a RandomWalkWrapper.
func NewRandomWalk(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	minV, err := cfg.Params.Float("min", 0)
	if err != nil {
		return nil, err
	}
	maxV, err := cfg.Params.Float("max", 100)
	if err != nil {
		return nil, err
	}
	if maxV <= minV {
		return nil, fmt.Errorf("wrappers: random walk needs max > min, got [%v, %v]", minV, maxV)
	}
	step, err := cfg.Params.Float("step", 1)
	if err != nil {
		return nil, err
	}
	names := strings.Split(cfg.Params.Get("fields", "value"), ",")
	var fields []stream.Field
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		fields = append(fields, stream.Field{Name: n, Type: stream.TypeFloat})
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("wrappers: random walk needs at least one field")
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	state := make([]float64, len(fields))
	for i := range state {
		state[i] = minV + rng.Float64()*(maxV-minV)
	}
	w := &RandomWalkWrapper{
		cfg: cfg, schema: schema, rng: rng, state: state,
		min: minV, max: maxV, step: step,
	}
	w.pacer.interval = interval
	return w, nil
}

// Kind implements Wrapper.
func (w *RandomWalkWrapper) Kind() string { return "random-walk" }

// Schema implements Wrapper.
func (w *RandomWalkWrapper) Schema() *stream.Schema { return w.schema }

// Start implements Wrapper.
func (w *RandomWalkWrapper) Start(emit EmitFunc) error {
	return w.pacer.start(func() error {
		e, err := w.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// Stop implements Wrapper.
func (w *RandomWalkWrapper) Stop() error { return w.pacer.halt() }

// Produce implements Producer.
func (w *RandomWalkWrapper) Produce() (stream.Element, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	values := make([]stream.Value, len(w.state))
	for i := range w.state {
		w.state[i] += w.rng.NormFloat64() * w.step
		if w.state[i] < w.min {
			w.state[i] = w.min
		}
		if w.state[i] > w.max {
			w.state[i] = w.max
		}
		values[i] = w.state[i]
	}
	return stream.NewElement(w.schema, w.cfg.Clock.Now(), values...)
}

// SystemWrapper reports Go runtime statistics of the hosting container —
// the equivalent of GSN's local "system monitor" wrapper, handy for
// self-observation dashboards.
//
// Parameters: interval (default 0 = pull-only).
type SystemWrapper struct {
	pacer
	cfg    Config
	schema *stream.Schema
}

var systemSchema = stream.MustSchema(
	stream.Field{Name: "heap_alloc", Type: stream.TypeInt, Description: "bytes of allocated heap"},
	stream.Field{Name: "num_goroutine", Type: stream.TypeInt},
	stream.Field{Name: "num_gc", Type: stream.TypeInt},
)

// NewSystem builds a SystemWrapper.
func NewSystem(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	s := &SystemWrapper{cfg: cfg, schema: systemSchema}
	s.pacer.interval = interval
	return s, nil
}

// Kind implements Wrapper.
func (s *SystemWrapper) Kind() string { return "system" }

// Schema implements Wrapper.
func (s *SystemWrapper) Schema() *stream.Schema { return s.schema }

// Start implements Wrapper.
func (s *SystemWrapper) Start(emit EmitFunc) error {
	return s.pacer.start(func() error {
		e, err := s.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// Stop implements Wrapper.
func (s *SystemWrapper) Stop() error { return s.pacer.halt() }

// Produce implements Producer.
func (s *SystemWrapper) Produce() (stream.Element, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return stream.NewElement(s.schema, s.cfg.Clock.Now(),
		int64(ms.HeapAlloc), int64(runtime.NumGoroutine()), int64(ms.NumGC))
}

// PushWrapper accepts elements pushed programmatically (or by the web
// layer's HTTP push endpoint). It is the integration point for data
// sources that call into GSN rather than being polled.
//
// Parameters:
//
//	fields  comma list of name:type pairs, e.g.
//	        "temperature:integer,label:varchar" (required)
type PushWrapper struct {
	cfg    Config
	schema *stream.Schema

	mu   sync.Mutex
	emit EmitFunc
}

// NewPush builds a PushWrapper.
func NewPush(cfg Config) (Wrapper, error) {
	spec := cfg.Params.Get("fields", "")
	if spec == "" {
		return nil, fmt.Errorf("wrappers: push wrapper requires a fields parameter")
	}
	var fields []stream.Field
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("wrappers: push field %q must be name:type", part)
		}
		ft, err := stream.ParseFieldType(kv[1])
		if err != nil {
			return nil, err
		}
		fields = append(fields, stream.Field{Name: kv[0], Type: ft})
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &PushWrapper{cfg: cfg, schema: schema}, nil
}

// Kind implements Wrapper.
func (p *PushWrapper) Kind() string { return "push" }

// Schema implements Wrapper.
func (p *PushWrapper) Schema() *stream.Schema { return p.schema }

// Start implements Wrapper.
func (p *PushWrapper) Start(emit EmitFunc) error {
	p.mu.Lock()
	p.emit = emit
	p.mu.Unlock()
	return nil
}

// Stop implements Wrapper.
func (p *PushWrapper) Stop() error {
	p.mu.Lock()
	p.emit = nil
	p.mu.Unlock()
	return nil
}

// Push validates and forwards values into the stream. It fails when the
// wrapper is not started.
func (p *PushWrapper) Push(values ...stream.Value) error {
	p.mu.Lock()
	emit := p.emit
	p.mu.Unlock()
	if emit == nil {
		return fmt.Errorf("wrappers: push wrapper %s not started", p.cfg.Name)
	}
	e, err := stream.NewElement(p.schema, p.cfg.Clock.Now(), values...)
	if err != nil {
		return err
	}
	emit(e)
	return nil
}

func init() {
	for kind, f := range map[string]Factory{
		"timer":       NewTimer,
		"random-walk": NewRandomWalk,
		"system":      NewSystem,
		"push":        NewPush,
	} {
		if err := Register(kind, f); err != nil {
			panic(err)
		}
	}
}
