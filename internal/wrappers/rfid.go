package wrappers

import (
	"fmt"
	"math/rand"
	"sync"

	"gsn/internal/stream"
)

// RFIDWrapper simulates an RFID reader (the paper uses Texas Instruments
// readers): a population of tags moves in and out of range; each poll
// reports the tag currently present, if any. The demo's event scenario —
// "when the RFID reader recognizes a tag, fetch a camera picture" —
// drives off this wrapper.
//
// Parameters:
//
//	interval     poll period (default 0 = pull-only)
//	tags         population size (default 8)
//	presence     probability a poll sees a tag (default 0.3)
//	reader-id    id string (default "reader-1")
//	dwell        mean consecutive polls a tag stays in range (default 3)
type RFIDWrapper struct {
	pacer
	cfg      Config
	schema   *stream.Schema
	tags     int
	presence float64
	readerID string
	dwell    int

	mu        sync.Mutex
	rng       *rand.Rand
	current   int // tag in range, -1 if none
	remaining int // polls before the current tag leaves
}

var rfidSchema = stream.MustSchema(
	stream.Field{Name: "reader_id", Type: stream.TypeString},
	stream.Field{Name: "tag_id", Type: stream.TypeString},
	stream.Field{Name: "rssi", Type: stream.TypeInt, Description: "signal strength (dBm)"},
)

// NewRFID builds an RFIDWrapper from config.
func NewRFID(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	tags, err := cfg.Params.Int("tags", 8)
	if err != nil {
		return nil, err
	}
	if tags <= 0 {
		return nil, fmt.Errorf("wrappers: rfid needs a positive tag population, got %d", tags)
	}
	presence, err := cfg.Params.Float("presence", 0.3)
	if err != nil {
		return nil, err
	}
	if presence < 0 || presence > 1 {
		return nil, fmt.Errorf("wrappers: rfid presence %v outside [0,1]", presence)
	}
	dwell, err := cfg.Params.Int("dwell", 3)
	if err != nil {
		return nil, err
	}
	if dwell < 1 {
		dwell = 1
	}
	r := &RFIDWrapper{
		cfg:      cfg,
		schema:   rfidSchema,
		tags:     tags,
		presence: presence,
		readerID: cfg.Params.Get("reader-id", "reader-1"),
		dwell:    dwell,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		current:  -1,
	}
	r.pacer.interval = interval
	return r, nil
}

// Kind implements Wrapper.
func (r *RFIDWrapper) Kind() string { return "rfid" }

// Schema implements Wrapper.
func (r *RFIDWrapper) Schema() *stream.Schema { return r.schema }

// Start implements Wrapper.
func (r *RFIDWrapper) Start(emit EmitFunc) error {
	return r.pacer.start(func() error {
		e, err := r.Produce()
		if err != nil {
			return err // ErrNoReading is skipped by the pacer
		}
		emit(e)
		return nil
	})
}

// Stop implements Wrapper.
func (r *RFIDWrapper) Stop() error { return r.pacer.halt() }

// Produce implements Producer. An empty read field returns ErrNoReading.
func (r *RFIDWrapper) Produce() (stream.Element, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.current < 0 {
		if r.rng.Float64() >= r.presence {
			return stream.Element{}, ErrNoReading
		}
		r.current = r.rng.Intn(r.tags)
		r.remaining = 1 + r.rng.Intn(2*r.dwell-1)
	}
	tag := fmt.Sprintf("tag-%04d", r.current)
	rssi := int64(-40 - r.rng.Intn(30))
	r.remaining--
	if r.remaining <= 0 {
		r.current = -1
	}
	return stream.NewElement(r.schema, r.cfg.Clock.Now(), r.readerID, tag, rssi)
}

// InjectTag forces the given tag into range for the next poll. The demo
// uses it to let "the audience" trigger events deterministically.
func (r *RFIDWrapper) InjectTag(tag int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tag < 0 || tag >= r.tags {
		tag = 0
	}
	r.current = tag
	r.remaining = 1
}

func init() {
	if err := Register("rfid", NewRFID); err != nil {
		panic(err)
	}
}
