package wrappers

import (
	"encoding/csv"
	"fmt"
	"os"
	"strings"
	"sync"

	"gsn/internal/stream"
)

// CSVWrapper replays readings from a CSV file — GSN's standard way to
// re-run recorded deployments. The first row must be a header naming the
// fields; the types parameter gives the column types.
//
// Parameters:
//
//	file      path to the CSV file (required)
//	types     comma list of column types aligned with the header
//	          (default: every column "double")
//	interval  replay period (default 0 = pull-only)
//	batch     rows replayed per tick as one burst (default 1); bursts
//	          flow through the container's batch ingestion path
//	loop      restart at EOF (default false; when false, Produce
//	          returns ErrNoReading after the last row)
type CSVWrapper struct {
	pacer
	cfg    Config
	schema *stream.Schema
	rows   [][]string
	loop   bool

	mu  sync.Mutex
	pos int
}

// NewCSV builds a CSVWrapper, reading and validating the whole file
// eagerly so descriptor errors surface at deploy time.
func NewCSV(cfg Config) (Wrapper, error) {
	path := cfg.Params.Get("file", "")
	if path == "" {
		return nil, fmt.Errorf("wrappers: csv wrapper requires a file parameter")
	}
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	loop, err := cfg.Params.Bool("loop", false)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wrappers: csv: %w", err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("wrappers: csv %s: %w", path, err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("wrappers: csv %s has no header row", path)
	}
	header := records[0]

	typeNames := strings.Split(cfg.Params.Get("types", ""), ",")
	fields := make([]stream.Field, len(header))
	for i, name := range header {
		ft := stream.TypeFloat
		if i < len(typeNames) && strings.TrimSpace(typeNames[i]) != "" {
			ft, err = stream.ParseFieldType(typeNames[i])
			if err != nil {
				return nil, err
			}
		}
		fields[i] = stream.Field{Name: name, Type: ft}
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	w := &CSVWrapper{cfg: cfg, schema: schema, rows: records[1:], loop: loop}
	w.pacer.interval = interval
	if err := w.pacer.configureBatch(cfg.Params); err != nil {
		return nil, err
	}
	return w, nil
}

// Kind implements Wrapper.
func (w *CSVWrapper) Kind() string { return "csv" }

// Schema implements Wrapper.
func (w *CSVWrapper) Schema() *stream.Schema { return w.schema }

// Remaining reports how many rows are left in the current pass.
func (w *CSVWrapper) Remaining() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.rows) - w.pos
}

// Start implements Wrapper.
func (w *CSVWrapper) Start(emit EmitFunc) error {
	return w.pacer.start(func() error {
		e, err := w.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// StartBatch implements BatchEmitter: with a batch parameter > 1 each
// tick replays a run of rows as one burst.
func (w *CSVWrapper) StartBatch(emit EmitFunc, emitBatch BatchEmitFunc) error {
	if w.pacer.batch <= 1 {
		return w.Start(emit)
	}
	return w.pacer.startBatch(w.ProduceBatch, emitBatch)
}

// Stop implements Wrapper.
func (w *CSVWrapper) Stop() error { return w.pacer.halt() }

// Produce implements Producer, replaying the next row. Empty cells
// become NULL.
func (w *CSVWrapper) Produce() (stream.Element, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.produceLocked()
}

// ProduceBatch implements BatchProducer, replaying up to max rows under
// one lock acquisition.
func (w *CSVWrapper) ProduceBatch(max int) ([]stream.Element, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []stream.Element
	for len(out) < max {
		e, err := w.produceLocked()
		if err == ErrNoReading {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, ErrNoReading
	}
	return out, nil
}

func (w *CSVWrapper) produceLocked() (stream.Element, error) {
	if w.pos >= len(w.rows) {
		if !w.loop || len(w.rows) == 0 {
			return stream.Element{}, ErrNoReading
		}
		w.pos = 0
	}
	row := w.rows[w.pos]
	w.pos++
	values := make([]stream.Value, w.schema.Len())
	for i := 0; i < w.schema.Len() && i < len(row); i++ {
		cell := strings.TrimSpace(row[i])
		if cell == "" {
			continue // NULL
		}
		v, err := stream.Coerce(cell, w.schema.Field(i).Type)
		if err != nil {
			return stream.Element{}, fmt.Errorf("wrappers: csv row %d field %s: %w",
				w.pos, w.schema.Field(i).Name, err)
		}
		values[i] = v
	}
	return stream.NewElement(w.schema, w.cfg.Clock.Now(), values...)
}

func init() {
	if err := Register("csv", NewCSV); err != nil {
		panic(err)
	}
}
