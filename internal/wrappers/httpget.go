package wrappers

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"gsn/internal/resilience"
	"gsn/internal/stream"
)

// HTTPGetWrapper polls an HTTP endpoint and streams the responses —
// this is how GSN integrated its wireless cameras in the paper's
// deployment (the AXIS 206W serves frames over HTTP GET). Each poll
// yields the status code, the body and the request latency, so the
// same wrapper covers cameras, REST sensors and health probes.
//
// Parameters:
//
//	url       endpoint to poll (required)
//	interval  poll period (default 0 = pull-only)
//	batch     requests issued per tick, delivered as one burst
//	          (default 1) — catch-up polling for endpoints that queue
//	          readings server-side
//	timeout   per-request timeout (default "5s")
//	max-body  response size cap in bytes (default 1 MiB)
//	retries   extra attempts per paced tick when a poll fails
//	          (default 2); the retry delays fit inside half the poll
//	          interval so a transient blip does not cost the tick.
//	          Pull-mode Produce stays single-shot.
type HTTPGetWrapper struct {
	pacer
	cfg     Config
	url     string
	client  *http.Client
	maxBody int64
	retries int

	mu    sync.Mutex
	polls uint64
	fails uint64
}

var httpGetSchema = stream.MustSchema(
	stream.Field{Name: "status", Type: stream.TypeInt, Description: "HTTP status code"},
	stream.Field{Name: "body", Type: stream.TypeBytes, Description: "response payload"},
	stream.Field{Name: "latency_ms", Type: stream.TypeInt, Description: "request round-trip"},
)

// NewHTTPGet builds an HTTPGetWrapper from config.
func NewHTTPGet(cfg Config) (Wrapper, error) {
	url := cfg.Params.Get("url", "")
	if url == "" {
		return nil, fmt.Errorf("wrappers: http-get requires a url parameter")
	}
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	timeout, err := cfg.Params.Duration("timeout", 5*time.Second)
	if err != nil {
		return nil, err
	}
	maxBody, err := cfg.Params.Int("max-body", 1<<20)
	if err != nil {
		return nil, err
	}
	if maxBody <= 0 {
		return nil, fmt.Errorf("wrappers: http-get max-body must be positive")
	}
	retries, err := cfg.Params.Int("retries", 2)
	if err != nil {
		return nil, err
	}
	if retries < 0 {
		return nil, fmt.Errorf("wrappers: http-get retries must be >= 0")
	}
	w := &HTTPGetWrapper{
		cfg:     cfg,
		url:     url,
		client:  &http.Client{Timeout: timeout},
		maxBody: int64(maxBody),
		retries: retries,
	}
	w.pacer.interval = interval
	if err := w.pacer.configureBatch(cfg.Params); err != nil {
		return nil, err
	}
	return w, nil
}

// Kind implements Wrapper.
func (w *HTTPGetWrapper) Kind() string { return "http-get" }

// Schema implements Wrapper.
func (w *HTTPGetWrapper) Schema() *stream.Schema { return httpGetSchema }

// Start implements Wrapper.
func (w *HTTPGetWrapper) Start(emit EmitFunc) error {
	return w.pacer.start(func() error {
		e, err := w.produceWithRetry()
		if err != nil {
			return err // ErrNoReading (unreachable endpoint) skips the tick
		}
		emit(e)
		return nil
	})
}

// produceWithRetry is the paced-tick read path: transient failures are
// retried inside half the poll period, so an endpoint that blips does
// not cost a whole tick of data. Pull-mode (interval 0) has no period
// to hide retries in and stays single-shot.
func (w *HTTPGetWrapper) produceWithRetry() (stream.Element, error) {
	if w.retries == 0 || w.pacer.interval <= 0 {
		return w.Produce()
	}
	budget := w.pacer.interval / 2
	seed := fnv.New64a()
	seed.Write([]byte(w.url))
	var e stream.Element
	err := resilience.Do(nil, resilience.Policy{
		Base:        budget / 8,
		Cap:         budget / 2,
		MaxAttempts: w.retries + 1,
		Budget:      budget,
		Seed:        int64(seed.Sum64()),
	}, func() error {
		var perr error
		e, perr = w.Produce()
		return perr
	})
	return e, err
}

// StartBatch implements BatchEmitter: with a batch parameter > 1 each
// tick issues a run of polls and delivers the responses as one burst.
func (w *HTTPGetWrapper) StartBatch(emit EmitFunc, emitBatch BatchEmitFunc) error {
	if w.pacer.batch <= 1 {
		return w.Start(emit)
	}
	return w.pacer.startBatch(w.ProduceBatch, emitBatch)
}

// Stop implements Wrapper.
func (w *HTTPGetWrapper) Stop() error { return w.pacer.halt() }

// ProduceBatch implements BatchProducer via sequential polls — the
// network round-trip dominates here; batching amortises the downstream
// ingestion cost, not the GET itself.
func (w *HTTPGetWrapper) ProduceBatch(max int) ([]stream.Element, error) {
	return ProduceUpTo(w, max)
}

// Produce implements Producer: one GET. An unreachable endpoint counts
// as a failed poll and reports ErrNoReading so the stream quality layer
// sees a silence, not a bogus element.
func (w *HTTPGetWrapper) Produce() (stream.Element, error) {
	start := time.Now()
	resp, err := w.client.Get(w.url)
	w.mu.Lock()
	w.polls++
	if err != nil {
		w.fails++
		w.mu.Unlock()
		return stream.Element{}, ErrNoReading
	}
	w.mu.Unlock()
	body, err := io.ReadAll(io.LimitReader(resp.Body, w.maxBody))
	resp.Body.Close()
	if err != nil {
		w.mu.Lock()
		w.fails++
		w.mu.Unlock()
		return stream.Element{}, ErrNoReading
	}
	latency := time.Since(start).Milliseconds()
	return stream.NewElement(httpGetSchema, w.cfg.Clock.Now(),
		int64(resp.StatusCode), body, latency)
}

// Stats reports poll counters.
func (w *HTTPGetWrapper) Stats() (polls, fails uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.polls, w.fails
}

func init() {
	if err := Register("http-get", NewHTTPGet); err != nil {
		panic(err)
	}
}
