package wrappers

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"gsn/internal/stream"
)

func TestHTTPGetPollsEndpoint(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("frame-data"))
	}))
	defer srv.Close()

	w, err := New("http-get", Config{Name: "h", Clock: stream.NewManualClock(0),
		Params: Params{"url": srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := w.(Producer).Produce()
	if err != nil {
		t.Fatal(err)
	}
	status, _ := e.ValueByName("status")
	if status != int64(200) {
		t.Errorf("status = %v", status)
	}
	body, _ := e.ValueByName("body")
	if string(body.([]byte)) != "frame-data" {
		t.Errorf("body = %v", body)
	}
	latency, _ := e.ValueByName("latency_ms")
	if latency.(int64) < 0 {
		t.Errorf("latency = %v", latency)
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d", hits.Load())
	}
}

func TestHTTPGetBodyCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 10_000))
	}))
	defer srv.Close()
	w, err := New("http-get", Config{Name: "h",
		Params: Params{"url": srv.URL, "max-body": "100"}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := w.(Producer).Produce()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := e.ValueByName("body")
	if len(body.([]byte)) != 100 {
		t.Errorf("capped body = %d bytes", len(body.([]byte)))
	}
}

func TestHTTPGetUnreachableIsNoReading(t *testing.T) {
	w, err := New("http-get", Config{Name: "h",
		Params: Params{"url": "http://127.0.0.1:1/nope", "timeout": "200ms"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.(Producer).Produce(); err != ErrNoReading {
		t.Errorf("unreachable endpoint: %v, want ErrNoReading", err)
	}
	hw := w.(*HTTPGetWrapper)
	polls, fails := hw.Stats()
	if polls != 1 || fails != 1 {
		t.Errorf("stats = %d/%d", polls, fails)
	}
}

func TestHTTPGetValidation(t *testing.T) {
	if _, err := New("http-get", Config{}); err == nil {
		t.Error("missing url accepted")
	}
	if _, err := New("http-get", Config{Params: Params{"url": "x", "max-body": "0"}}); err == nil {
		t.Error("zero max-body accepted")
	}
}

func TestHTTPGetErrorStatusStillReported(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	}))
	defer srv.Close()
	w, _ := New("http-get", Config{Name: "h", Params: Params{"url": srv.URL}})
	e, err := w.(Producer).Produce()
	if err != nil {
		t.Fatal(err)
	}
	status, _ := e.ValueByName("status")
	if status != int64(404) {
		t.Errorf("status = %v; 4xx is a reading, not a failure", status)
	}
}
