package wrappers

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gsn/internal/stream"
)

func writeTestCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "b.csv")
	data := "v\n"
	for i := 1; i <= rows; i++ {
		data += fmt.Sprintf("%d\n", i)
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCSVProduceBatch: batches replay runs of rows in order and report
// ErrNoReading only once the file is exhausted.
func TestCSVProduceBatch(t *testing.T) {
	w, err := New("csv", Config{Name: "b", Params: Params{
		"file": writeTestCSV(t, 5), "types": "integer",
	}, Clock: stream.NewManualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	bp := w.(BatchProducer)
	first, err := bp.ProduceBatch(3)
	if err != nil || len(first) != 3 {
		t.Fatalf("ProduceBatch(3) = %d, %v", len(first), err)
	}
	if first[0].Value(0) != int64(1) || first[2].Value(0) != int64(3) {
		t.Fatalf("batch order wrong: %v", first)
	}
	rest, err := bp.ProduceBatch(10)
	if err != nil || len(rest) != 2 {
		t.Fatalf("ProduceBatch(10) = %d, %v", len(rest), err)
	}
	if _, err := bp.ProduceBatch(1); err != ErrNoReading {
		t.Fatalf("exhausted file returned %v", err)
	}
}

// TestMoteProduceBatch: a packet train of random-walk readings under
// one call, schema-conformant.
func TestMoteProduceBatch(t *testing.T) {
	w, err := New("mote", Config{Name: "m", Params: Params{}, Seed: 3,
		Clock: stream.NewManualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	bp := w.(BatchProducer)
	elems, err := bp.ProduceBatch(10)
	if err != nil || len(elems) != 10 {
		t.Fatalf("ProduceBatch = %d, %v", len(elems), err)
	}
	for _, e := range elems {
		if !e.Schema().Equal(w.Schema()) {
			t.Fatalf("element schema %s != wrapper schema %s", e.Schema(), w.Schema())
		}
	}
}

// TestProduceUpTo: the generic helper stops at the first empty poll and
// reports ErrNoReading only for a completely empty drain.
func TestProduceUpTo(t *testing.T) {
	w, err := New("csv", Config{Name: "u", Params: Params{
		"file": writeTestCSV(t, 2), "types": "integer",
	}, Clock: stream.NewManualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	p := w.(Producer)
	got, err := ProduceUpTo(p, 5)
	if err != nil || len(got) != 2 {
		t.Fatalf("ProduceUpTo = %d, %v", len(got), err)
	}
	if _, err := ProduceUpTo(p, 5); err != ErrNoReading {
		t.Fatalf("empty drain returned %v", err)
	}
}

// TestCSVStartBatchEmitsBursts: with a batch parameter, the paced loop
// delivers whole bursts through the batch emit path.
func TestCSVStartBatchEmitsBursts(t *testing.T) {
	w, err := New("csv", Config{Name: "sb", Params: Params{
		"file": writeTestCSV(t, 9), "types": "integer",
		"interval": "1ms", "batch": "3",
	}, Clock: stream.NewManualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	be, ok := w.(BatchEmitter)
	if !ok {
		t.Fatal("csv wrapper does not implement BatchEmitter")
	}
	var (
		mu      sync.Mutex
		batches [][]stream.Element
	)
	err = be.StartBatch(
		func(e stream.Element) { t.Error("single emit used despite batch mode") },
		func(elems []stream.Element) {
			mu.Lock()
			batches = append(batches, elems)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(batches)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d batches arrived", n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, b := range batches[:3] {
		if len(b) != 3 {
			t.Fatalf("batch %d has %d elements, want 3", i, len(b))
		}
	}
	if batches[0][0].Value(0) != int64(1) || batches[2][2].Value(0) != int64(9) {
		t.Fatalf("burst order wrong: %v ... %v", batches[0][0], batches[2][2])
	}
}

// TestBatchParamDefaultsToPerElement: batch=1 (or absent) keeps
// StartBatch on the per-element emit path, preserving old behaviour.
func TestBatchParamDefaultsToPerElement(t *testing.T) {
	w, err := New("csv", Config{Name: "pe", Params: Params{
		"file": writeTestCSV(t, 4), "types": "integer", "interval": "1ms",
	}, Clock: stream.NewManualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	be := w.(BatchEmitter)
	var (
		mu      sync.Mutex
		singles int
	)
	err = be.StartBatch(
		func(e stream.Element) { mu.Lock(); singles++; mu.Unlock() },
		func(elems []stream.Element) { t.Error("batch emit used without a batch parameter") })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := singles
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d singles arrived", n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
}
