package wrappers

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"gsn/internal/stream"
)

// CameraWrapper simulates a wireless HTTP camera (the paper deploys
// AXIS 206W units). Each frame is a deterministic pseudo-JPEG byte
// payload of configurable size — the stream element sizes (SES) on the
// Figure 3 axis come from this knob.
//
// Parameters:
//
//	interval  frame period (default 0 = pull-only)
//	payload   frame size: "15", "15B", "16KB", "75KB" (default "16KB")
//	camera-id integer id in the CAMERA_ID field (default 1)
type CameraWrapper struct {
	pacer
	cfg     Config
	schema  *stream.Schema
	payload int
	camID   int64

	mu    sync.Mutex
	rng   *rand.Rand
	frame int64
	buf   []byte
}

var cameraSchema = stream.MustSchema(
	stream.Field{Name: "camera_id", Type: stream.TypeInt},
	stream.Field{Name: "frame", Type: stream.TypeInt, Description: "frame sequence number"},
	stream.Field{Name: "image", Type: stream.TypeBytes, Description: "encoded frame"},
)

// jpegMagic makes simulated frames recognisable in dumps.
var jpegMagic = []byte{0xFF, 0xD8, 0xFF, 0xE0}

// NewCamera builds a CameraWrapper from config.
func NewCamera(cfg Config) (Wrapper, error) {
	interval, err := cfg.Params.Duration("interval", 0)
	if err != nil {
		return nil, err
	}
	payload, err := ParseByteSize(cfg.Params.Get("payload", "16KB"))
	if err != nil {
		return nil, err
	}
	if payload < len(jpegMagic)+12 {
		payload = len(jpegMagic) + 12
	}
	camID, err := cfg.Params.Int("camera-id", 1)
	if err != nil {
		return nil, err
	}
	c := &CameraWrapper{
		cfg:     cfg,
		schema:  cameraSchema,
		payload: payload,
		camID:   int64(camID),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	c.pacer.interval = interval
	return c, nil
}

// ParseByteSize parses "15", "15B", "16KB", "2MB" into a byte count.
func ParseByteSize(s string) (int, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(t, "KB"):
		mult, t = 1024, strings.TrimSuffix(t, "KB")
	case strings.HasSuffix(t, "MB"):
		mult, t = 1024*1024, strings.TrimSuffix(t, "MB")
	case strings.HasSuffix(t, "B"):
		t = strings.TrimSuffix(t, "B")
	}
	n, err := strconv.Atoi(strings.TrimSpace(t))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("wrappers: invalid byte size %q", s)
	}
	return n * mult, nil
}

// Kind implements Wrapper.
func (c *CameraWrapper) Kind() string { return "camera" }

// Schema implements Wrapper.
func (c *CameraWrapper) Schema() *stream.Schema { return c.schema }

// PayloadSize returns the configured frame size in bytes.
func (c *CameraWrapper) PayloadSize() int { return c.payload }

// Start implements Wrapper.
func (c *CameraWrapper) Start(emit EmitFunc) error {
	return c.pacer.start(func() error {
		e, err := c.Produce()
		if err != nil {
			return err
		}
		emit(e)
		return nil
	})
}

// Stop implements Wrapper.
func (c *CameraWrapper) Stop() error { return c.pacer.halt() }

// Produce implements Producer: one frame. The frame buffer is reused
// across calls and copied into the element, matching how a device
// driver would hand buffers to the middleware.
func (c *CameraWrapper) Produce() (stream.Element, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frame++
	if c.buf == nil {
		c.buf = make([]byte, c.payload)
		copy(c.buf, jpegMagic)
		// Deterministic "texture": cheap PRNG fill once; per-frame
		// variation touches only a small region below.
		c.rng.Read(c.buf[len(jpegMagic):])
	}
	// Stamp the frame number and a few varying bytes so frames differ.
	binary.BigEndian.PutUint64(c.buf[len(jpegMagic):], uint64(c.frame))
	binary.BigEndian.PutUint32(c.buf[len(jpegMagic)+8:], c.rng.Uint32())
	img := make([]byte, len(c.buf))
	copy(img, c.buf)
	return stream.NewElement(c.schema, c.cfg.Clock.Now(), c.camID, c.frame, img)
}

func init() {
	if err := Register("camera", NewCamera); err != nil {
		panic(err)
	}
}
