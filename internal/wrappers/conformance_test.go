package wrappers

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gsn/internal/stream"
)

// TestWrapperConformance exercises every built-in wrapper kind against
// the Wrapper contract: construction from defaults, a stable Kind and
// non-empty Schema, paced Start/Stop with production, idempotent Stop,
// and — for Producers — elements that validate against the schema.
func TestWrapperConformance(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "c.csv")
	if err := os.WriteFile(csvPath, []byte("v\n1\n2\n3\n4\n5\n6\n7\n8\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Per-kind parameters that make the wrapper production-ready with a
	// fast pace; presence=1 keeps the RFID reader always reading.
	params := map[string]Params{
		"mote":        {"interval": "2"},
		"camera":      {"interval": "2", "payload": "256B"},
		"rfid":        {"interval": "2", "presence": "1"},
		"timer":       {"interval": "2"},
		"random-walk": {"interval": "2"},
		"system":      {"interval": "2"},
		"csv":         {"interval": "2", "file": csvPath, "types": "integer", "loop": "true"},
		"push":        {"fields": "v:integer"},
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			p, ok := params[kind]
			if !ok {
				t.Skipf("no conformance parameters for externally registered kind %q", kind)
			}
			w, err := New(kind, Config{Name: "conf-" + kind, Seed: 42,
				Clock: stream.SystemClock(), Params: p})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if w.Kind() != kind {
				t.Errorf("Kind() = %q, want %q", w.Kind(), kind)
			}
			schema := w.Schema()
			if schema.Len() == 0 {
				t.Fatal("empty schema")
			}

			var mu sync.Mutex
			var got []stream.Element
			if err := w.Start(func(e stream.Element) {
				mu.Lock()
				got = append(got, e)
				mu.Unlock()
			}); err != nil {
				t.Fatalf("Start: %v", err)
			}
			// Push wrappers produce only when pushed.
			if pw, ok := w.(*PushWrapper); ok {
				if err := pw.Push(int64(7)); err != nil {
					t.Fatalf("Push: %v", err)
				}
			}
			deadline := time.Now().Add(2 * time.Second)
			for {
				mu.Lock()
				n := len(got)
				mu.Unlock()
				if n >= 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("paced wrapper produced nothing")
				}
				time.Sleep(2 * time.Millisecond)
			}
			if err := w.Stop(); err != nil {
				t.Fatalf("Stop: %v", err)
			}
			if err := w.Stop(); err != nil {
				t.Fatalf("second Stop: %v", err)
			}

			mu.Lock()
			defer mu.Unlock()
			for _, e := range got {
				if !e.Schema().Equal(schema) {
					t.Fatalf("element schema %s != wrapper schema %s", e.Schema(), schema)
				}
				if e.Len() != schema.Len() {
					t.Fatalf("element arity %d != schema %d", e.Len(), schema.Len())
				}
			}

			// Pull-capable wrappers must also produce on demand.
			if prod, ok := w.(Producer); ok {
				e, err := prod.Produce()
				if err != nil && err != ErrNoReading {
					t.Fatalf("Produce after Stop: %v", err)
				}
				if err == nil && !e.Schema().Equal(schema) {
					t.Errorf("Produce schema mismatch")
				}
			}
		})
	}
}

func TestCameraPayloadAccessor(t *testing.T) {
	w, err := New("camera", Config{Name: "c", Params: Params{"payload": "1KB"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.(*CameraWrapper).PayloadSize(); got != 1024 {
		t.Errorf("PayloadSize = %d", got)
	}
}

func TestMotePlatformTag(t *testing.T) {
	w, err := New("mote", Config{Name: "m", Params: Params{"platform": "tinynode"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.(*MoteWrapper).Platform(); got != "tinynode" {
		t.Errorf("Platform = %q", got)
	}
}
