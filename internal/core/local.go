package core

import (
	"fmt"
	"strings"
	"sync"

	"gsn/internal/stream"
	"gsn/internal/vsensor"
	"gsn/internal/wrappers"
)

// Local composition: a stream source with wrapper="local" subscribes to
// another deployed sensor's output stream in-process. Delivery is
// push-based and zero-copy — the upstream trigger pipeline hands its
// freshly inserted output elements straight to every subscriber's
// quality chain (fanoutLocal), with no polling wrapper and no table
// rescan. In synchronous mode the whole downstream cascade runs inline
// on the producing goroutine, which keeps multi-tier pipelines
// deterministic for tests and the cascade benchmark; in asynchronous
// mode each tier hands off to its own worker pool.

// localSub is one downstream subscription on a sensor's output stream.
type localSub struct {
	id        int64
	emit      wrappers.EmitFunc
	emitBatch wrappers.BatchEmitFunc
}

// localFanout is the container's composition bus: upstream sensor name →
// live downstream subscriptions. It has its own lock (never held while
// delivering) so lifecycle operations and the trigger hot path cannot
// deadlock through it.
type localFanout struct {
	mu     sync.RWMutex
	nextID int64
	subs   map[string]map[int64]*localSub
}

func newLocalFanout() *localFanout {
	return &localFanout{subs: make(map[string]map[int64]*localSub)}
}

// subscribe registers a downstream delivery pair for a sensor's output.
func (f *localFanout) subscribe(sensor string, emit wrappers.EmitFunc, emitBatch wrappers.BatchEmitFunc) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	m := f.subs[sensor]
	if m == nil {
		m = make(map[int64]*localSub)
		f.subs[sensor] = m
	}
	m[f.nextID] = &localSub{id: f.nextID, emit: emit, emitBatch: emitBatch}
	return f.nextID
}

// unsubscribe removes a subscription; unknown ids are a no-op (Stop is
// idempotent).
func (f *localFanout) unsubscribe(sensor string, id int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.subs[sensor]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(f.subs, sensor)
		}
	}
}

// deliver pushes a burst of output elements to every subscriber of the
// sensor. The subscription snapshot is taken under the lock but
// delivery runs outside it: a subscriber's chain inserts into its own
// window table and may cascade further tiers, and none of that may
// serialise against lifecycle changes here. Each subscriber gets its
// own slice (batch sinks take ownership and stamp arrival in place);
// the element payloads themselves are shared, never copied.
func (f *localFanout) deliver(sensor string, elems []stream.Element) {
	f.mu.RLock()
	m := f.subs[sensor]
	if len(m) == 0 {
		f.mu.RUnlock()
		return
	}
	list := make([]*localSub, 0, len(m))
	for _, s := range m {
		list = append(list, s)
	}
	f.mu.RUnlock()
	for _, s := range list {
		if len(elems) == 1 {
			s.emit(elems[0])
			continue
		}
		batch := make([]stream.Element, len(elems))
		copy(batch, elems)
		s.emitBatch(batch)
	}
}

// newCompositionSource resolves a wrapper="local" source to its data
// path: an in-process composition-bus subscription when the upstream
// sensor is deployed here, or — on a clustered node — a remote edge
// streaming the sensor from its owning peer over the exactly-once
// (epoch, seq) protocol. Either way the returned wrapper rides the
// ordinary source machinery (quality chain, window table, compiled
// plans, supervision), which is what makes composition
// network-transparent: the descriptor does not say, and the downstream
// sensor cannot tell, where the upstream lives.
func newCompositionSource(c *Container, spec vsensor.StreamSource) (wrappers.Wrapper, error) {
	target := spec.Address.LocalTarget()
	if target == "" {
		return nil, fmt.Errorf("core: local source %s needs a sensor predicate", spec.Alias)
	}
	if _, ok := c.store.Table(target); ok {
		return newLocalWrapper(c, spec)
	}
	if cl := c.Cluster(); cl != nil {
		// Extra address predicates tune the remote edge (poll,
		// degrade-after, key-id, …) just like an explicit remote wrapper.
		params := map[string]string{}
		for _, p := range spec.Address.Predicates {
			key := strings.TrimSpace(p.Key)
			if key == "" || strings.EqualFold(key, "sensor") {
				continue
			}
			params[key] = p.Value()
		}
		w, err := cl.RemoteSource(target, params)
		if err != nil {
			return nil, fmt.Errorf("core: local source %s: virtual sensor %s is not deployed here and cluster resolution failed: %w",
				spec.Alias, target, err)
		}
		c.metrics.Counter("cluster_remote_edges").Inc()
		return w, nil
	}
	return newLocalWrapper(c, spec) // reports the canonical not-deployed error
}

// localWrapper adapts an upstream virtual sensor's output stream to the
// wrapper contract, so a local source rides the exact machinery a
// platform wrapper does — quality chain, window table, compiled source
// plans, gap supervision. It is constructed by the container (not the
// wrapper registry) because it needs the composition bus.
type localWrapper struct {
	c      *Container
	target string // canonical upstream sensor name
	schema *stream.Schema

	mu    sync.Mutex
	subID int64 // 0 when not started
}

// newLocalWrapper resolves the upstream sensor's output table and binds
// to its schema. The container checks deployment-order dependencies
// before construction, so a missing table here means a programming
// error upstream of us — still reported cleanly.
func newLocalWrapper(c *Container, spec vsensor.StreamSource) (*localWrapper, error) {
	target := spec.Address.LocalTarget()
	if target == "" {
		return nil, fmt.Errorf("core: local source %s needs a sensor predicate", spec.Alias)
	}
	tab, ok := c.store.Table(target)
	if !ok {
		return nil, fmt.Errorf("core: local source %s: virtual sensor %s is not deployed", spec.Alias, target)
	}
	// Binding to the table's own schema pointer keeps the identity
	// fast path in Table.checkSchema for every delivered element.
	return &localWrapper{c: c, target: target, schema: tab.Schema()}, nil
}

// Kind implements wrappers.Wrapper.
func (w *localWrapper) Kind() string { return vsensor.LocalWrapperKind }

// Schema implements wrappers.Wrapper: the upstream sensor's output
// structure.
func (w *localWrapper) Schema() *stream.Schema { return w.schema }

// Start implements wrappers.Wrapper by subscribing to the upstream
// output stream.
func (w *localWrapper) Start(emit wrappers.EmitFunc) error {
	return w.StartBatch(emit, func(batch []stream.Element) {
		for _, e := range batch {
			emit(e)
		}
	})
}

// StartBatch implements wrappers.BatchEmitter: upstream bursts cross
// the downstream quality chain and window table as one batch.
func (w *localWrapper) StartBatch(emit wrappers.EmitFunc, emitBatch wrappers.BatchEmitFunc) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.subID != 0 {
		return fmt.Errorf("core: local source of %s already started", w.target)
	}
	w.subID = w.c.locals.subscribe(w.target, emit, emitBatch)
	return nil
}

// Stop implements wrappers.Wrapper; it is idempotent.
func (w *localWrapper) Stop() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.subID != 0 {
		w.c.locals.unsubscribe(w.target, w.subID)
		w.subID = 0
	}
	return nil
}
