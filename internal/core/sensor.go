package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gsn/internal/quality"
	"gsn/internal/resilience"
	"gsn/internal/sqlengine"
	"gsn/internal/sqlparser"
	"gsn/internal/storage"
	"gsn/internal/stream"
	"gsn/internal/vsensor"
	"gsn/internal/wrappers"
)

// VirtualSensor is the runtime of one deployed descriptor: its wrappers,
// quality chains, window tables, worker pool and output table. It is
// created and owned by the container's virtual sensor manager.
type VirtualSensor struct {
	name      string
	desc      *vsensor.Descriptor
	container *Container
	outSchema *stream.Schema
	outTable  *storage.Table
	streams   []*inputStream

	triggers chan trigger
	wg       sync.WaitGroup
	stopOnce sync.Once

	// lifeMu guards the trigger channel's lifecycle: enqueue sends only
	// under the read lock with stopping false, and stop closes the
	// channel under the write lock after setting stopping — so a
	// lifecycle operation (undeploy, redeploy swap) racing a producer
	// can never send on a closed channel.
	lifeMu   sync.RWMutex
	stopping bool

	statTriggers  atomic.Uint64
	statOutputs   atomic.Uint64
	statErrors    atomic.Uint64
	statDropped   atomic.Uint64
	statCoalesced atomic.Uint64
	statLastError atomic.Value // string
}

// inputStream is one <input-stream> at runtime.
type inputStream struct {
	spec    vsensor.InputStream
	stmt    *sqlparser.SelectStatement
	plan    *sqlengine.Plan // compiled output query; nil → Execute fallback
	rate    *quality.RateLimiter
	count   *quality.CountLimiter
	sources []*sourceRuntime

	// queued is true while an evaluation for this stream is scheduled
	// but has not started reading the window yet. Arrivals in that span
	// coalesce into the pending evaluation (which sees their elements,
	// unless it is itself shed by a full queue) instead of enqueueing
	// another trigger.
	queued atomic.Bool
}

// sourceRuntime is one <stream-source> at runtime.
type sourceRuntime struct {
	alias   string
	spec    vsensor.StreamSource
	wrapper wrappers.Wrapper
	stmt    *sqlparser.SelectStatement
	table   *storage.Table

	// plan is the source query compiled against the wrapper schema at
	// deploy time; nil when the statement shape needs the full engine.
	plan *sqlengine.Plan
	// agg incrementally maintains an aggregate-only source query —
	// ungrouped or grouped (GROUP BY rollup) — over the count window;
	// nil when the query or window does not qualify.
	agg incMaintainer

	sampler *quality.Sampler
	repair  *quality.Repairer
	buffer  *quality.DisconnectBuffer
	gap     *quality.GapDetector

	slide    int           // trigger every slide-th arrival (≥1)
	arrivals atomic.Uint64 // accepted arrivals, for slide accounting

	// Supervision state: restart attempts escalate through restartBo
	// (notBefore gates the next attempt) instead of firing every tick,
	// and a source that exhausts its restart budget without recovering
	// goes terminally failed — surfaced via Health, reset by redeploy.
	restarts     atomic.Uint64
	restartFails atomic.Uint64 // consecutive restarts without recovery
	failed       atomic.Bool
	failReason   atomic.Value // string
	restartBo    *resilience.Backoff
	notBefore    atomic.Int64 // unix nanos; supervision waits until then
}

// trigger is one unit of work for the processing pool: an element
// arrived on a source of a stream (the paper: "production of a new
// output stream element is always triggered by the arrival of a data
// stream element from one of its input streams").
type trigger struct {
	stream   *inputStream
	enqueued time.Time
}

// SensorStats summarises a virtual sensor's activity.
type SensorStats struct {
	Name     string
	Triggers uint64
	Outputs  uint64
	Errors   uint64
	Dropped  uint64
	// Coalesced counts triggers collapsed into an already-pending
	// evaluation of the same input stream (overload back-pressure).
	Coalesced   uint64
	LastError   string
	OutputLive  int
	OutputTotal uint64
	Sources     []SourceStats
}

// SourceStats summarises one stream source.
type SourceStats struct {
	Stream     string
	Alias      string
	Wrapper    string
	WindowLive int
	Inserted   uint64
	Sampled    quality.Stats
	Buffered   int
	Gaps       uint64
	Restarts   uint64
	// RestartFails counts consecutive restarts that have not yet revived
	// the source (zero once data flows again).
	RestartFails uint64
	// Failed marks a source that exhausted its restart budget.
	Failed     bool
	FailReason string
}

// newVirtualSensor wires a validated descriptor into runtime state.
// Nothing starts until start() is called, so a failed construction
// leaves no goroutines behind. A non-nil reuseOut is the preserved
// output table of a state-preserving redeploy (its schema is known
// Equal to the descriptor's): the runtime binds to it instead of
// creating a fresh table, and construction failures never drop it.
//
// Any fallible step added here or in buildSource must be mirrored in
// Container.preflight, which promises Redeploy that this construction
// will succeed before the old runtime is torn down.
func newVirtualSensor(c *Container, desc *vsensor.Descriptor, reuseOut *storage.Table) (*VirtualSensor, error) {
	outSchema, err := desc.OutputSchema()
	if err != nil {
		return nil, err
	}
	window, err := desc.StorageWindow()
	if err != nil {
		return nil, err
	}
	name := stream.CanonicalName(desc.Name)
	vs := &VirtualSensor{
		name:      name,
		desc:      desc,
		container: c,
		outSchema: outSchema,
		triggers:  make(chan trigger, triggerQueueSize(desc.LifeCycle.PoolSize)),
	}
	vs.statLastError.Store("")

	if reuseOut != nil {
		// Adopt the table's schema pointer so output elements keep the
		// identity fast path in Table.checkSchema (the schemas are Equal,
		// but equality is checked per insert; identity is free).
		vs.outSchema = reuseOut.Schema()
		vs.outTable = reuseOut
	} else {
		syncPolicy, ok := storage.ParseSyncPolicy(desc.Storage.Sync)
		if !ok {
			return nil, fmt.Errorf("core: %s: unknown storage sync policy %q", name, desc.Storage.Sync)
		}
		var flushInterval time.Duration
		if desc.Storage.FlushInterval != "" {
			flushInterval, err = time.ParseDuration(desc.Storage.FlushInterval)
			if err != nil {
				return nil, fmt.Errorf("core: %s: storage flush-interval: %w", name, err)
			}
		}
		lanes, err := vsensor.ParseLanes(desc.Storage.Lanes)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		outTable, err := c.store.CreateTable(name, outSchema, storage.TableOptions{
			Window:        window,
			Permanent:     desc.Storage.Permanent,
			Sync:          syncPolicy,
			FlushInterval: flushInterval,
			History:       desc.Storage.History == "disk",
			IngestLanes:   lanes,
		})
		if err != nil {
			return nil, err
		}
		vs.outTable = outTable
	}

	cleanup := func() {
		for _, in := range vs.streams {
			for _, src := range in.sources {
				c.store.DropTable(src.table.Name())
			}
		}
		if reuseOut == nil {
			c.store.DropTable(name)
		}
	}

	for i := range desc.Streams {
		spec := desc.Streams[i]
		stmt, err := sqlparser.Parse(spec.Query)
		if err != nil {
			cleanup()
			return nil, err // unreachable after Validate, kept for safety
		}
		in := &inputStream{spec: spec, stmt: stmt}
		// Stream-level bounds are shared by all of the stream's sources;
		// per-source chains consult them via Admit.
		in.rate = quality.NewRateLimiter(spec.Rate, c.clock, nil)
		in.count = quality.NewCountLimiter(spec.Count, nil)

		for j := range spec.Sources {
			srcSpec := spec.Sources[j]
			src, err := vs.buildSource(in, srcSpec)
			if err != nil {
				cleanup()
				return nil, err
			}
			in.sources = append(in.sources, src)
		}
		// Compile the output query once at deploy time when it runs over
		// a single source whose column layout is itself known statically;
		// other shapes (multi-source joins, uncompiled sources) keep the
		// general Execute path.
		if len(in.sources) == 1 && in.sources[0].plan != nil {
			if plan, err := sqlengine.Compile(stmt, in.sources[0].plan.OutputColumns(),
				in.sources[0].alias); err == nil {
				in.plan = plan
			}
		}
		vs.streams = append(vs.streams, in)
	}
	return vs, nil
}

func triggerQueueSize(poolSize int) int {
	n := poolSize * 8
	if n < 64 {
		n = 64
	}
	return n
}

// sourceTableName builds the window table name for a source.
func sourceTableName(vs, streamName, alias string) string {
	return stream.CanonicalName(vs + "__" + streamName + "__" + alias)
}

func (vs *VirtualSensor) buildSource(in *inputStream, spec vsensor.StreamSource) (*sourceRuntime, error) {
	c := vs.container
	stmt, err := sqlparser.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	params := wrappers.Params{}
	for _, p := range spec.Address.Predicates {
		params[p.Key] = p.Value()
	}
	seed, err := params.Int("seed", 0)
	if err != nil {
		return nil, err
	}
	var w wrappers.Wrapper
	if spec.Address.Wrapper == vsensor.LocalWrapperKind {
		// Composition edge: the source is another sensor's output
		// stream — in-process when deployed here, a cluster remote edge
		// otherwise; never a platform wrapper. Constructed here (not
		// via the registry) because it binds to this container's
		// composition bus or federation.
		w, err = newCompositionSource(c, spec)
	} else {
		wrapperName := vs.name + "/" + in.spec.Name + "/" + spec.Alias
		w, err = c.registry.New(spec.Address.Wrapper, wrappers.Config{
			Name:   wrapperName,
			Params: params,
			Seed:   int64(seed),
			Clock:  c.clock,
		})
	}
	if err != nil {
		return nil, err
	}

	window, err := stream.ParseWindow(spec.StorageSize)
	if err != nil {
		return nil, err
	}
	table, err := c.store.CreateTable(sourceTableName(vs.name, in.spec.Name, spec.Alias),
		w.Schema(), storage.TableOptions{Window: window})
	if err != nil {
		return nil, err
	}

	src := &sourceRuntime{
		alias:   stream.CanonicalName(spec.Alias),
		spec:    spec,
		wrapper: w,
		stmt:    stmt,
		table:   table,
		slide:   spec.Slide,
	}
	if src.slide < 1 {
		src.slide = 1
	}
	src.failReason.Store("")
	// Restart escalation paces itself in supervision ticks: first retry
	// is immediate, later ones spread out to ~30 ticks so a dead device
	// stops costing a wrapper teardown per tick.
	src.restartBo = resilience.NewBackoff(c.opts.SuperviseInterval,
		30*c.opts.SuperviseInterval, int64(seed)+int64(len(vs.name)))

	// Compile the source query against the wrapper schema once, at
	// deploy time. Statement shapes the compiler does not cover fall
	// back to per-trigger Execute. Aggregate-only queries over a count
	// window additionally get incremental maintenance: the table streams
	// insert/evict events into the maintainer and each trigger reads the
	// running aggregates instead of rescanning the window.
	if plan, err := sqlengine.Compile(stmt, sqlengine.ColumnsOfSchema(w.Schema()),
		vsensor.WrapperTable(), spec.Alias); err == nil {
		src.plan = plan
		if src.agg = newIncMaintainer(plan, window, w.Schema()); src.agg != nil {
			table.SetObserver(src.agg)
		}
	}

	// Quality chain, innermost stage first: the terminal sink inserts
	// into the window table and enqueues the trigger. With a slide > 1
	// the window advances on every arrival but processing fires only on
	// every slide-th element.
	terminal := func(e stream.Element) {
		if err := table.Insert(e); err != nil {
			vs.recordError(err)
			return
		}
		if src.arrivals.Add(1)%uint64(src.slide) == 0 {
			vs.enqueue(trigger{stream: in})
		}
	}
	// The batch terminal lands a whole burst with one InsertBatch (one
	// table lock, one WAL group append) and accounts one trigger per
	// slide boundary the burst crosses — the same count the per-element
	// path would produce. Async mode relies on PR 1's coalescing to
	// collapse them into one evaluation; sync mode collapses them here
	// (enqueueCoalesced), so a burst costs one evaluation covering its
	// full window in either mode.
	terminalBatch := func(batch []stream.Element) {
		if len(batch) == 0 {
			return
		}
		if err := table.InsertBatch(batch); err != nil {
			vs.recordError(err)
			return
		}
		vs.container.metrics.Counter("ingest_batches").Inc()
		n := uint64(len(batch))
		total := src.arrivals.Add(n)
		slide := uint64(src.slide)
		vs.enqueueCoalesced(trigger{stream: in}, int(total/slide-(total-n)/slide))
	}
	src.buffer = quality.NewDisconnectBuffer(spec.DisconnectBuffer, terminal)
	src.buffer.SetBatchSink(terminalBatch)
	src.repair = quality.NewRepairer(vs.repairPolicy(params), src.buffer.Offer)
	src.repair.SetBatchSink(src.buffer.OfferBatch)

	// The sampler feeds the shared stream-level bounds (rate and
	// lifetime count apply to the whole input stream), which gate this
	// source's repair → buffer → table chain.
	src.sampler = quality.NewSampler(spec.SamplingRate, int64(seed)+1, func(e stream.Element) {
		if in.rate.Admit(e) && in.count.Admit(e) {
			src.repair.Offer(e)
		}
	})
	src.sampler.SetBatchSink(func(batch []stream.Element) {
		batch = in.rate.AdmitBatch(batch)
		batch = in.count.AdmitBatch(batch)
		src.repair.OfferBatch(batch)
	})

	gapTimeout, err := params.Duration("gap-timeout", 0)
	if err != nil {
		return nil, err
	}
	src.gap = quality.NewGapDetector(gapTimeout, c.clock, nil)
	return src, nil
}

// repairPolicy reads the optional repair parameter from the address
// predicates.
func (vs *VirtualSensor) repairPolicy(params wrappers.Params) quality.RepairPolicy {
	policy, ok := quality.ParseRepairPolicy(params.Get("repair", ""))
	if !ok {
		vs.recordError(fmt.Errorf("core: %s: unknown repair policy %q, using none",
			vs.name, params.Get("repair", "")))
		return quality.RepairNone
	}
	return policy
}

// ingress is the wrapper-facing entry point for a source: processing
// step 1 — stamp the element with the container's local clock when the
// producer supplied no timestamp, and record the arrival time.
func (vs *VirtualSensor) ingress(src *sourceRuntime, e stream.Element) {
	now := vs.container.clock.Now()
	if !e.HasTimestamp() {
		e = e.WithTimestamp(now)
	}
	e = e.WithArrival(now)
	src.gap.Offer(e)
	src.sampler.Offer(e)
}

// ingressBatch is the burst form of ingress: the whole batch is stamped
// with one arrival instant and crosses the quality chain and the window
// table through the batch-aware paths (one lock acquisition per stage,
// one WAL group append). Wrappers implementing BatchEmitter land here.
func (vs *VirtualSensor) ingressBatch(src *sourceRuntime, elems []stream.Element) {
	if len(elems) == 0 {
		return
	}
	now := vs.container.clock.Now()
	for i := range elems {
		if !elems[i].HasTimestamp() {
			elems[i] = elems[i].WithTimestamp(now)
		}
		elems[i] = elems[i].WithArrival(now)
	}
	src.gap.OfferBatch(elems)
	src.sampler.OfferBatch(elems)
}

// enqueue hands a trigger to the worker pool (or processes inline in
// synchronous mode). When an evaluation for the same input stream is
// already scheduled and has not yet read its window, the trigger
// coalesces into it: if that evaluation runs, it sees this arrival's
// element (the insert completed before the coalescing check, and the
// worker clears the queued flag before scanning the window), so one
// evaluation covers the whole burst. A full queue still drops the
// trigger — and with it any arrivals that coalesced into it — matching
// the pre-existing overload contract: window tables advance, only
// recomputation is shed, and the next successful trigger's evaluation
// covers everything still live in the window.
func (vs *VirtualSensor) enqueue(tr trigger) {
	vs.statTriggers.Add(1)
	tr.enqueued = time.Now()
	if vs.container.opts.SyncProcessing {
		// Best-effort stop check (no lock held across the inline
		// evaluation): a producer racing a lifecycle swap sheds its
		// trigger instead of processing on a retired runtime.
		vs.lifeMu.RLock()
		stopped := vs.stopping
		vs.lifeMu.RUnlock()
		if stopped {
			vs.statDropped.Add(1)
			return
		}
		vs.process(tr)
		return
	}
	if !tr.stream.queued.CompareAndSwap(false, true) {
		vs.statCoalesced.Add(1)
		vs.container.metrics.Counter("triggers_coalesced").Inc()
		return
	}
	// The read lock brackets the send against stop()'s close: a
	// lifecycle swap racing a producer drops the trigger instead of
	// panicking on a closed channel.
	vs.lifeMu.RLock()
	if vs.stopping {
		vs.lifeMu.RUnlock()
		tr.stream.queued.Store(false)
		vs.statDropped.Add(1)
		return
	}
	select {
	case vs.triggers <- tr:
	default:
		tr.stream.queued.Store(false)
		vs.statDropped.Add(1)
	}
	vs.lifeMu.RUnlock()
}

// enqueueCoalesced accounts n slide crossings from one burst. In
// synchronous mode the burst evaluates once — the single evaluation
// sees the whole burst in the window, exactly what async coalescing
// converges to — with the collapsed triggers counted in
// SensorStats.Coalesced. Async mode enqueues each trigger and lets the
// queued-flag coalescing collapse them.
func (vs *VirtualSensor) enqueueCoalesced(tr trigger, n int) {
	if n <= 0 {
		return
	}
	if vs.container.opts.SyncProcessing && n > 1 {
		vs.statTriggers.Add(uint64(n))
		// Same best-effort stop shed as enqueue's sync path: a burst
		// racing a lifecycle swap must not process on a retired runtime.
		vs.lifeMu.RLock()
		stopped := vs.stopping
		vs.lifeMu.RUnlock()
		if stopped {
			vs.statDropped.Add(uint64(n))
			return
		}
		vs.statCoalesced.Add(uint64(n - 1))
		vs.container.metrics.Counter("triggers_coalesced").Add(uint64(n - 1))
		tr.enqueued = time.Now()
		vs.process(tr)
		return
	}
	for i := 0; i < n; i++ {
		vs.enqueue(tr)
	}
}

// start launches the worker pool and the wrappers.
func (vs *VirtualSensor) start() error {
	if !vs.container.opts.SyncProcessing {
		for i := 0; i < vs.desc.LifeCycle.PoolSize; i++ {
			vs.wg.Add(1)
			go vs.worker()
		}
	}
	for _, in := range vs.streams {
		for _, src := range in.sources {
			if err := vs.startWrapper(src); err != nil {
				vs.stop()
				return fmt.Errorf("core: starting wrapper %s for %s: %w",
					src.spec.Address.Wrapper, vs.name, err)
			}
		}
	}
	return nil
}

// startWrapper starts (or restarts) one source's wrapper, preferring
// the batch emission path when the wrapper supports it. The supervision
// loop shares this with start so a restarted wrapper keeps its batch
// ingestion semantics.
func (vs *VirtualSensor) startWrapper(src *sourceRuntime) error {
	emit := func(e stream.Element) { vs.ingress(src, e) }
	if be, ok := src.wrapper.(wrappers.BatchEmitter); ok {
		return be.StartBatch(emit, func(batch []stream.Element) { vs.ingressBatch(src, batch) })
	}
	return src.wrapper.Start(emit)
}

// worker consumes triggers until the channel closes. A panicking query
// (life-cycle manager duty) is recovered and counted; the worker
// survives.
func (vs *VirtualSensor) worker() {
	defer vs.wg.Done()
	for tr := range vs.triggers {
		// Clear the coalescing flag before the evaluation reads any
		// window: an arrival after this point schedules a fresh trigger,
		// an arrival before it is already in the table and covered by
		// this evaluation.
		tr.stream.queued.Store(false)
		vs.safeProcess(tr)
	}
}

func (vs *VirtualSensor) safeProcess(tr trigger) {
	defer func() {
		if r := recover(); r != nil {
			vs.recordError(fmt.Errorf("core: %s: processing panic: %v", vs.name, r))
		}
	}()
	vs.process(tr)
}

// process executes steps 2–5 of the paper's processing pipeline for one
// trigger. Source evaluation picks the cheapest applicable tier:
// incremental aggregates (O(1), no window scan), compiled plan over the
// zero-copy window view (no snapshot copy, no re-planning), or the full
// engine for statement shapes the compiler does not cover.
func (vs *VirtualSensor) process(tr trigger) {
	c := vs.container
	start := time.Now()

	// Steps 2+3: select each source's window and evaluate the source
	// query into a temporary relation named by the alias.
	temps := make(sqlengine.MapCatalog, len(tr.stream.sources))
	for _, src := range tr.stream.sources {
		rel, err := vs.evalSource(src)
		if err != nil {
			vs.recordError(fmt.Errorf("core: %s/%s source query: %w", vs.name, src.alias, err))
			return
		}
		temps[src.alias] = rel
	}

	// Step 4: the input stream's output query over the temporaries.
	var outRel *sqlengine.Relation
	var err error
	if tr.stream.plan != nil {
		outRel, err = tr.stream.plan.Execute(temps[tr.stream.sources[0].alias].Rows, c.engineOpts())
	} else {
		outRel, err = sqlengine.Execute(tr.stream.stmt, temps, c.engineOpts())
	}
	if err != nil {
		vs.recordError(fmt.Errorf("core: %s/%s output query: %w", vs.name, tr.stream.spec.Name, err))
		return
	}

	// Step 5: persist and notify.
	elems, err := elementsFromRelation(vs.outSchema, outRel, c.clock.Now())
	if err != nil {
		vs.recordError(err)
		return
	}
	inserted := 0
	var insertErr error
	for _, e := range elems {
		if err := vs.outTable.Insert(e); err != nil {
			vs.recordError(err)
			insertErr = err
			break
		}
		inserted++
		vs.statOutputs.Add(1)
		c.notifier.Publish(vs.name, e)
	}
	// Only the successfully inserted prefix reaches downstream — and
	// all of it does, even when a later insert failed: delivery is
	// push-based with no rescan, so skipping published elements would
	// permanently diverge downstream windows from this output table.
	elems = elems[:inserted]
	// Local composition fan-out: downstream sensors whose local sources
	// subscribe to this output receive the burst push-based, outside
	// any table lock (their chains insert into their own windows and
	// may cascade further tiers).
	if len(elems) > 0 {
		c.locals.deliver(vs.name, elems)
	}
	// The client-query sweep (repository layer) observes its own wall
	// time into client_query_time. Async mode schedules it on the
	// repository's pool with per-sensor coalescing, so a burst of
	// outputs costs one sweep and never blocks this trigger worker.
	if len(elems) > 0 {
		if c.opts.SyncProcessing {
			c.queries.EvaluateFor(vs.name, c.Catalog(), c.engineOpts())
		} else {
			c.queries.ScheduleSweep(vs.name, c.Catalog(), c.engineOpts())
		}
	}
	if insertErr != nil {
		return
	}

	c.metrics.Histogram("processing_time").Observe(time.Since(start))
	c.metrics.Histogram("trigger_latency").Observe(time.Since(tr.enqueued))
	c.metrics.Counter("elements_processed").Inc()
}

// evalSource evaluates one source query over its current window.
func (vs *VirtualSensor) evalSource(src *sourceRuntime) (*sqlengine.Relation, error) {
	c := vs.container
	if src.agg != nil {
		if src.agg.NeedsResync() {
			// Bounded float drift: rebuild the aggregate state from the
			// live window (SetObserver replays it under the table lock).
			src.table.SetObserver(src.agg)
			c.metrics.Counter("source_eval_resyncs").Inc()
		}
		// Read under the table lock so the result reflects exactly the
		// live window — never the instant between an insert and the
		// eviction it displaces.
		var rel *sqlengine.Relation
		src.table.WithLock(func() { rel = src.agg.Result() })
		if rel != nil {
			c.metrics.Counter("source_eval_incremental").Inc()
			return rel, nil
		}
		// Poisoned maintainer: fall through so the full engine surfaces
		// the underlying type error on the normal path.
	}
	if src.plan != nil {
		c.metrics.Counter("source_eval_compiled").Inc()
		return src.plan.ExecuteSource(src.table, c.engineOpts())
	}
	c.metrics.Counter("source_eval_general").Inc()
	winRel := sqlengine.RelationOfSource(src.table)
	cat := sqlengine.MapCatalog{
		vsensor.WrapperTable(): winRel,
		src.alias:              winRel,
	}
	return sqlengine.Execute(src.stmt, cat, c.engineOpts())
}

// stop halts wrappers, drains in-flight triggers and drops no tables
// (the container owns table lifecycle). Queued triggers finish before
// stop returns — the drain a graceful redeploy swap relies on.
func (vs *VirtualSensor) stop() {
	vs.stopOnce.Do(func() {
		for _, in := range vs.streams {
			for _, src := range in.sources {
				if err := src.wrapper.Stop(); err != nil {
					vs.recordError(err)
				}
			}
		}
		vs.lifeMu.Lock()
		vs.stopping = true
		close(vs.triggers)
		vs.lifeMu.Unlock()
		vs.wg.Wait()
	})
}

func (vs *VirtualSensor) recordError(err error) {
	vs.statErrors.Add(1)
	vs.statLastError.Store(err.Error())
	vs.container.metrics.Counter("processing_errors").Inc()
	if vs.container.opts.Logger != nil {
		vs.container.opts.Logger.Printf("gsn: %s: %v", vs.name, err)
	}
}

// Name returns the canonical sensor name.
func (vs *VirtualSensor) Name() string { return vs.name }

// Descriptor returns the deployed descriptor.
func (vs *VirtualSensor) Descriptor() *vsensor.Descriptor { return vs.desc }

// OutputSchema returns the output structure as a schema.
func (vs *VirtualSensor) OutputSchema() *stream.Schema { return vs.outSchema }

// Output returns the output window table.
func (vs *VirtualSensor) Output() *storage.Table { return vs.outTable }

// Stats snapshots the sensor's runtime counters.
func (vs *VirtualSensor) Stats() SensorStats {
	st := SensorStats{
		Name:      vs.name,
		Triggers:  vs.statTriggers.Load(),
		Outputs:   vs.statOutputs.Load(),
		Errors:    vs.statErrors.Load(),
		Dropped:   vs.statDropped.Load(),
		Coalesced: vs.statCoalesced.Load(),
		LastError: vs.statLastError.Load().(string),
	}
	ot := vs.outTable.Stats()
	st.OutputLive = ot.Live
	st.OutputTotal = ot.Inserted
	for _, in := range vs.streams {
		for _, src := range in.sources {
			ts := src.table.Stats()
			st.Sources = append(st.Sources, SourceStats{
				Stream:     in.spec.Name,
				Alias:      src.alias,
				Wrapper:    src.wrapper.Kind(),
				WindowLive: ts.Live,
				Inserted:   ts.Inserted,
				Sampled:    src.sampler.Stats(),
				Buffered:   src.buffer.Buffered(),
				Gaps:       src.gap.Gaps(),
				Restarts:   src.restarts.Load(),

				RestartFails: src.restartFails.Load(),
				Failed:       src.failed.Load(),
				FailReason:   src.failReason.Load().(string),
			})
		}
	}
	return st
}

// Pulse drives every pull-capable wrapper of the sensor once: each
// source whose wrapper implements wrappers.Producer produces one
// reading, which flows through the full ingress path. Deterministic
// tests and the benchmark harness use it instead of real-time pacing.
// It returns the number of elements injected.
func (vs *VirtualSensor) Pulse() int {
	injected := 0
	for _, in := range vs.streams {
		for _, src := range in.sources {
			p, ok := src.wrapper.(wrappers.Producer)
			if !ok {
				continue
			}
			e, err := p.Produce()
			if err != nil {
				if err != wrappers.ErrNoReading {
					vs.recordError(err)
				}
				continue
			}
			vs.ingress(src, e)
			injected++
		}
	}
	return injected
}

// PulseBatch drives every batch-capable wrapper of the sensor once:
// each source whose wrapper implements wrappers.BatchProducer produces
// up to max readings in one call, injected through the batch ingress
// path (sources with only a plain Producer fall back to one element).
// The ingest benchmarks and deterministic burst tests use it. It
// returns the number of elements injected.
func (vs *VirtualSensor) PulseBatch(max int) int {
	if max < 1 {
		max = 1
	}
	injected := 0
	for _, in := range vs.streams {
		for _, src := range in.sources {
			bp, ok := src.wrapper.(wrappers.BatchProducer)
			if !ok {
				p, ok := src.wrapper.(wrappers.Producer)
				if !ok {
					continue
				}
				e, err := p.Produce()
				if err != nil {
					if err != wrappers.ErrNoReading {
						vs.recordError(err)
					}
					continue
				}
				vs.ingress(src, e)
				injected++
				continue
			}
			elems, err := bp.ProduceBatch(max)
			if err != nil && err != wrappers.ErrNoReading {
				vs.recordError(err)
			}
			// A mid-batch producer error still delivers the produced
			// prefix, matching the paced batch path.
			if len(elems) > 0 {
				injected += len(elems)
				vs.ingressBatch(src, elems)
			}
		}
	}
	return injected
}
