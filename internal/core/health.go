package core

import (
	"fmt"

	"gsn/internal/wrappers"
)

// HealthState is a sensor's (or the container's) position in the
// three-step health ladder. States order by severity so aggregation is
// a max() over components.
type HealthState int

const (
	// Healthy: all durability tiers armed, no failed sources.
	Healthy HealthState = iota
	// Degraded: serving and ingesting, but some guarantee is suspended
	// (a storage tier lost durability, a wrapper is in restart backoff).
	// The runtime is trying to heal itself.
	Degraded
	// Failed: a component gave up (a source exhausted its restart
	// budget). Operator action — redeploy or fix the device — is needed.
	Failed
)

// String returns the state's spelling ("healthy", "degraded", "failed").
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// MarshalText renders the state's spelling into JSON and text output.
func (s HealthState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state spelling (clients decoding /api/health).
func (s *HealthState) UnmarshalText(text []byte) error {
	switch string(text) {
	case "healthy":
		*s = Healthy
	case "degraded":
		*s = Degraded
	case "failed":
		*s = Failed
	default:
		return fmt.Errorf("core: unknown health state %q", text)
	}
	return nil
}

// HealthReport is one component's health verdict.
type HealthReport struct {
	State  HealthState `json:"state"`
	Reason string      `json:"reason,omitempty"`
}

// ContainerHealth aggregates per-sensor health into a container
// verdict: the worst sensor state wins.
type ContainerHealth struct {
	State   HealthState             `json:"state"`
	Sensors map[string]HealthReport `json:"sensors"`
}

// Health reports the sensor's current health: Failed when any source
// exhausted its wrapper-restart budget, Degraded when a storage tier
// is running with durability suspended or a source is waiting out a
// restart backoff, Healthy otherwise.
func (vs *VirtualSensor) Health() HealthReport {
	for _, in := range vs.streams {
		for _, src := range in.sources {
			if src.failed.Load() {
				reason, _ := src.failReason.Load().(string)
				return HealthReport{State: Failed,
					Reason: fmt.Sprintf("source %s: %s", src.alias, reason)}
			}
		}
	}
	if ok, reason := vs.outTable.Health(); !ok {
		return HealthReport{State: Degraded, Reason: "output table: " + reason}
	}
	for _, in := range vs.streams {
		for _, src := range in.sources {
			if ok, reason := src.table.Health(); !ok {
				return HealthReport{State: Degraded,
					Reason: fmt.Sprintf("source %s window: %s", src.alias, reason)}
			}
			if src.restartFails.Load() > 0 {
				return HealthReport{State: Degraded,
					Reason: fmt.Sprintf("source %s: wrapper in restart backoff", src.alias)}
			}
			// A wrapper that judges its own upstream link (the p2p remote
			// wrapper under sustained disconnects) degrades the sensor
			// without the restart machinery: restarting locally cannot
			// reach an unreachable peer, and the wrapper clears itself on
			// the first successful fetch.
			if hr, ok := src.wrapper.(wrappers.HealthReporter); ok {
				if degraded, reason := hr.HealthState(); degraded {
					return HealthReport{State: Degraded,
						Reason: fmt.Sprintf("source %s: %s", src.alias, reason)}
				}
			}
		}
	}
	return HealthReport{State: Healthy}
}

// Health reports container health: the worst deployed sensor's state,
// with every sensor's verdict attached. /api/health serves this as the
// readiness surface (503 when State is Failed).
func (c *Container) Health() ContainerHealth {
	h := ContainerHealth{State: Healthy, Sensors: make(map[string]HealthReport)}
	for _, vs := range c.Sensors() {
		r := vs.Health()
		h.Sensors[vs.name] = r
		if r.State > h.State {
			h.State = r.State
		}
	}
	return h
}
