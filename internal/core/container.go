// Package core implements the GSN container (paper §4, Figure 2): the
// virtual sensor manager with its life-cycle manager and input stream
// manager, the storage layer binding, the query manager (query
// processor + query repository + notification manager) and the
// supervision loop. A container hosts and manages any number of virtual
// sensors concurrently and supports adding, removing and reconfiguring
// them while running.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gsn/internal/access"
	"gsn/internal/directory"
	"gsn/internal/integrity"
	"gsn/internal/metrics"
	"gsn/internal/notify"
	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
	"gsn/internal/vsensor"
	"gsn/internal/wrappers"
)

// Options configures a container. The zero value is a working
// in-memory, real-time container.
type Options struct {
	// Name identifies the container (node) in logs and the directory.
	Name string
	// Clock drives timestamping, windows and rate control. Nil means
	// the system clock; tests install a manual clock.
	Clock stream.Clock
	// DataDir enables permanent storage for descriptors that request
	// it. Empty disables persistence.
	DataDir string
	// Registry supplies wrapper factories; nil means the process-wide
	// default registry.
	Registry *wrappers.Registry
	// NodeAddress is the externally reachable address published to the
	// directory (e.g. "http://host:22001").
	NodeAddress string
	// DirectoryTTL is the publication lifetime (default 5 minutes).
	DirectoryTTL time.Duration
	// Directory lets multiple in-process containers share one registry
	// (tests, examples); nil creates a private one.
	Directory *directory.Registry
	// Notify tunes the notification manager.
	Notify notify.Options
	// SyncProcessing processes triggers inline on the producing
	// goroutine instead of through the worker pool. Deterministic mode
	// for tests and benchmarks.
	SyncProcessing bool
	// DisableHashJoin forces nested-loop joins (ablation knob).
	DisableHashJoin bool
	// MaxQueryRows bounds query results (0 = engine default).
	MaxQueryRows int
	// Logger receives warnings and supervision events; nil silences
	// them. *log.Logger satisfies it.
	Logger Logger
	// SuperviseInterval is the supervision loop period (default 1s;
	// the loop only runs in asynchronous mode).
	SuperviseInterval time.Duration
}

// Logger is the minimal logging contract the container needs;
// *log.Logger satisfies it.
type Logger interface {
	Printf(format string, v ...any)
}

// Container is one GSN node runtime.
type Container struct {
	opts     Options
	name     string
	clock    stream.Clock
	store    *storage.Store
	notifier *notify.Manager
	dir      *directory.Registry
	acl      *access.Controller
	keys     *integrity.KeyRing
	metrics  *metrics.Registry
	registry *wrappers.Registry
	queries  *QueryRepository
	results  *resultCache

	mu      sync.RWMutex
	sensors map[string]*VirtualSensor
	closed  bool

	superviseStop chan struct{}
	superviseDone chan struct{}
}

// New creates and starts a container.
func New(opts Options) (*Container, error) {
	if opts.Clock == nil {
		opts.Clock = stream.SystemClock()
	}
	if opts.Registry == nil {
		opts.Registry = wrappers.Default()
	}
	if opts.Name == "" {
		opts.Name = "gsn-node"
	}
	if opts.SuperviseInterval <= 0 {
		opts.SuperviseInterval = time.Second
	}
	store, err := storage.NewStore(opts.Clock, opts.DataDir)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	// WAL append/flush failures — including asynchronous group-commit
	// losses — surface on this counter.
	store.SetLogErrorCounter(reg.Counter("storage_log_errors"))
	dir := opts.Directory
	if dir == nil {
		dir = directory.NewRegistry(opts.Clock, opts.DirectoryTTL)
	}
	c := &Container{
		opts:     opts,
		name:     opts.Name,
		clock:    opts.Clock,
		store:    store,
		notifier: notify.NewManager(opts.Notify),
		dir:      dir,
		acl:      access.NewController(),
		keys:     integrity.NewKeyRing(),
		metrics:  reg,
		registry: opts.Registry,
		queries:  NewQueryRepository(reg),
		sensors:  make(map[string]*VirtualSensor),
	}
	c.results = newResultCache(store, reg)
	if !opts.SyncProcessing {
		c.superviseStop = make(chan struct{})
		c.superviseDone = make(chan struct{})
		go c.supervise()
	}
	return c, nil
}

// engineOpts builds the SQL engine options for this container.
func (c *Container) engineOpts() sqlengine.Options {
	return sqlengine.Options{
		Clock:           c.clock,
		DisableHashJoin: c.opts.DisableHashJoin,
		MaxRows:         c.opts.MaxQueryRows,
	}
}

// Deploy validates a descriptor and brings the virtual sensor online:
// wrapper instantiation, window tables, worker pool, directory
// publication. Deployment is atomic — on any error nothing remains.
func (c *Container) Deploy(desc *vsensor.Descriptor) error {
	if desc == nil {
		return fmt.Errorf("core: nil descriptor")
	}
	if err := desc.Validate(); err != nil {
		return err
	}
	name := stream.CanonicalName(desc.Name)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("core: container %s is closed", c.name)
	}
	if _, exists := c.sensors[name]; exists {
		c.mu.Unlock()
		return fmt.Errorf("core: virtual sensor %s is already deployed", name)
	}
	vs, err := newVirtualSensor(c, desc)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.sensors[name] = vs
	c.mu.Unlock()

	if err := vs.start(); err != nil {
		c.removeSensor(name, vs)
		return err
	}
	c.dir.Publish(name, c.opts.NodeAddress, desc.MetadataMap(), c.opts.DirectoryTTL)
	for _, n := range desc.Notify {
		if err := c.attachNotification(name, n); err != nil {
			c.logf("gsn: %s: %v", name, err)
		}
	}
	c.metrics.Counter("deployments").Inc()
	c.logf("gsn: deployed %s (pool-size %d, %d input stream(s))",
		name, desc.LifeCycle.PoolSize, len(desc.Streams))
	return nil
}

// DeployXML parses and deploys a descriptor document.
func (c *Container) DeployXML(data []byte) error {
	desc, err := vsensor.Parse(data)
	if err != nil {
		return err
	}
	return c.Deploy(desc)
}

// attachNotification wires one declarative <notification> element.
func (c *Container) attachNotification(sensor string, n vsensor.Notification) error {
	var ch notify.Channel
	switch n.Channel {
	case "log":
		w := c.opts.Logger
		if w == nil {
			return nil // nowhere to log; silently skip
		}
		ch = notify.FuncChannel{ChannelName: "log", Fn: func(ev notify.Event) error {
			data, err := notify.MarshalEvent(ev)
			if err != nil {
				return err
			}
			w.Printf("notify %s #%d %s", ev.Sensor, ev.Seq, data)
			return nil
		}}
	case "webhook":
		ch = notify.NewWebhookChannel(n.Target)
	case "file":
		fc, err := notify.NewFileChannel(n.Target)
		if err != nil {
			return err
		}
		ch = fc
	default:
		return fmt.Errorf("core: unknown notification channel %q", n.Channel)
	}
	_, err := c.notifier.Subscribe(sensor, ch)
	return err
}

// Undeploy removes a virtual sensor: wrappers stop, tables drop,
// subscriptions and client queries for it are cancelled, the directory
// entry is withdrawn. Running queries finish first (pool drain).
func (c *Container) Undeploy(name string) error {
	canonical := stream.CanonicalName(name)
	c.mu.Lock()
	vs, ok := c.sensors[canonical]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: virtual sensor %s is not deployed", canonical)
	}
	c.removeSensor(canonical, vs)
	c.notifier.UnsubscribeSensor(canonical)
	c.queries.UnregisterSensor(canonical)
	c.dir.Unpublish(canonical, c.opts.NodeAddress)
	c.metrics.Counter("undeployments").Inc()
	c.logf("gsn: undeployed %s", canonical)
	return nil
}

func (c *Container) removeSensor(name string, vs *VirtualSensor) {
	vs.stop()
	c.mu.Lock()
	delete(c.sensors, name)
	c.mu.Unlock()
	for _, in := range vs.streams {
		for _, src := range in.sources {
			if err := c.store.DropTable(src.table.Name()); err != nil {
				c.logf("gsn: %s: %v", name, err)
			}
		}
	}
	if err := c.store.DropTable(name); err != nil {
		c.logf("gsn: %s: %v", name, err)
	}
}

// Redeploy atomically replaces a sensor's configuration: the paper's
// on-the-fly reconfiguration. The old instance (if any) is removed
// first; deployment errors leave the sensor undeployed (the old
// configuration is already torn down, matching GSN's behaviour).
func (c *Container) Redeploy(desc *vsensor.Descriptor) error {
	if desc == nil {
		return fmt.Errorf("core: nil descriptor")
	}
	canonical := stream.CanonicalName(desc.Name)
	c.mu.RLock()
	_, exists := c.sensors[canonical]
	c.mu.RUnlock()
	if exists {
		if err := c.Undeploy(canonical); err != nil {
			return err
		}
	}
	return c.Deploy(desc)
}

// Sensor looks up a deployed virtual sensor.
func (c *Container) Sensor(name string) (*VirtualSensor, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vs, ok := c.sensors[stream.CanonicalName(name)]
	return vs, ok
}

// Sensors lists deployed sensors sorted by name.
func (c *Container) Sensors() []*VirtualSensor {
	c.mu.RLock()
	out := make([]*VirtualSensor, 0, len(c.sensors))
	for _, vs := range c.sensors {
		out = append(out, vs)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Query runs a one-shot SQL query over the container's stored streams
// (virtual sensor outputs and source windows). Results are served from
// the version-stamped result cache when every referenced table is
// unchanged since the last identical query, so repeated reads between
// inserts are free; callers must treat the relation as read-only.
func (c *Container) Query(sql string) (*sqlengine.Relation, error) {
	start := time.Now()
	rel, err := c.results.Query(sql, c.engineOpts())
	c.metrics.Histogram("adhoc_query_time").Observe(time.Since(start))
	return rel, err
}

// RegisterQuery adds a continuous client query against a deployed
// sensor (the query repository path; see Figure 4). The statement is
// compiled against the sensor's output schema at registration, and
// identical SQL registered by many clients shares one evaluation.
func (c *Container) RegisterQuery(sensor, sql string, sampling float64, cb func(*sqlengine.Relation)) (int64, error) {
	canonical := stream.CanonicalName(sensor)
	c.mu.RLock()
	vs, ok := c.sensors[canonical]
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("core: virtual sensor %s is not deployed", canonical)
	}
	return c.queries.Register(canonical, sql, sampling, cb, vs.outTable)
}

// UnregisterQuery removes a continuous client query.
func (c *Container) UnregisterQuery(id int64) error { return c.queries.Unregister(id) }

// Subscribe attaches a notification channel to a sensor's output.
func (c *Container) Subscribe(sensor string, ch notify.Channel) (int64, error) {
	return c.notifier.Subscribe(sensor, ch)
}

// Unsubscribe detaches a notification subscription.
func (c *Container) Unsubscribe(id int64) error { return c.notifier.Unsubscribe(id) }

// Pulse drives every pull-capable wrapper of every sensor once (see
// VirtualSensor.Pulse) and returns the number of injected elements.
func (c *Container) Pulse() int {
	total := 0
	for _, vs := range c.Sensors() {
		total += vs.Pulse()
	}
	return total
}

// PulseBatch drives every batch-capable wrapper once, injecting up to
// max elements per source as one burst through the batch ingestion
// path.
func (c *Container) PulseBatch(max int) int {
	total := 0
	for _, vs := range c.Sensors() {
		total += vs.PulseBatch(max)
	}
	return total
}

// supervise is the life-cycle manager's background loop: it restarts
// wrappers whose sources have gone silent past their gap timeout and
// refreshes directory publications.
func (c *Container) supervise() {
	defer close(c.superviseDone)
	ticker := time.NewTicker(c.opts.SuperviseInterval)
	defer ticker.Stop()
	republishEvery := c.opts.DirectoryTTL
	if republishEvery <= 0 {
		republishEvery = 5 * time.Minute
	}
	republishEvery /= 2
	lastRepublish := time.Now()
	for {
		select {
		case <-c.superviseStop:
			return
		case <-ticker.C:
		}
		for _, vs := range c.Sensors() {
			for _, in := range vs.streams {
				for _, src := range in.sources {
					if src.gap.Check() {
						c.logf("gsn: %s/%s: source silent beyond gap-timeout, restarting wrapper",
							vs.name, src.alias)
						src.restarts.Add(1)
						c.metrics.Counter("wrapper_restarts").Inc()
						src.wrapper.Stop()
						src := src
						if err := src.wrapper.Start(func(e stream.Element) { vs.ingress(src, e) }); err != nil {
							vs.recordError(err)
						}
					}
				}
			}
		}
		if time.Since(lastRepublish) >= republishEvery {
			lastRepublish = time.Now()
			for _, vs := range c.Sensors() {
				c.dir.Publish(vs.name, c.opts.NodeAddress, vs.desc.MetadataMap(), c.opts.DirectoryTTL)
			}
			c.dir.GC()
		}
	}
}

// Notifier exposes the notification manager (web layer, tests).
func (c *Container) Notifier() *notify.Manager { return c.notifier }

// Directory exposes the discovery registry.
func (c *Container) Directory() *directory.Registry { return c.dir }

// Store exposes the storage layer.
func (c *Container) Store() *storage.Store { return c.store }

// Metrics exposes the metrics registry.
func (c *Container) Metrics() *metrics.Registry { return c.metrics }

// MetricsSnapshot renders the registry plus the caches that live
// outside it: the process-wide SQL statement cache and the container's
// version-stamped result cache. /api/metrics serves this.
func (c *Container) MetricsSnapshot() map[string]any {
	out := c.metrics.Snapshot()
	sc := sqlengine.DefaultStatementCacheStats()
	out["stmt_cache_hits"] = sc.Hits
	out["stmt_cache_misses"] = sc.Misses
	out["stmt_cache_size"] = sc.Size
	out["result_cache_size"] = c.results.Len()
	return out
}

// ACL exposes the access controller.
func (c *Container) ACL() *access.Controller { return c.acl }

// Keys exposes the integrity keyring.
func (c *Container) Keys() *integrity.KeyRing { return c.keys }

// QueryRepositoryRef exposes the client query repository.
func (c *Container) QueryRepositoryRef() *QueryRepository { return c.queries }

// Clock returns the container clock.
func (c *Container) Clock() stream.Clock { return c.clock }

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// NodeAddress returns the published node address.
func (c *Container) NodeAddress() string { return c.opts.NodeAddress }

// Close undeploys every sensor and releases resources.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	names := make([]string, 0, len(c.sensors))
	for name := range c.sensors {
		names = append(names, name)
	}
	c.mu.Unlock()

	if c.superviseStop != nil {
		close(c.superviseStop)
		<-c.superviseDone
	}
	for _, name := range names {
		c.mu.RLock()
		vs := c.sensors[name]
		c.mu.RUnlock()
		if vs != nil {
			c.removeSensor(name, vs)
			c.dir.Unpublish(name, c.opts.NodeAddress)
		}
	}
	c.queries.Close()
	c.notifier.Close()
	return c.store.Close()
}

func (c *Container) logf(format string, args ...any) {
	if c.opts.Logger != nil {
		c.opts.Logger.Printf(format, args...)
	}
}
