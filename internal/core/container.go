// Package core implements the GSN container (paper §4, Figure 2): the
// virtual sensor manager with its life-cycle manager and input stream
// manager, the storage layer binding, the query manager (query
// processor + query repository + notification manager), the local
// composition bus and dependency graph, and the supervision loop. A
// container hosts and manages any number of virtual sensors
// concurrently and supports adding, removing and reconfiguring them
// while running. docs/architecture.md walks the full data path from
// wrapper arrival to client query through this package.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gsn/internal/access"
	"gsn/internal/directory"
	"gsn/internal/integrity"
	"gsn/internal/metrics"
	"gsn/internal/notify"
	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
	"gsn/internal/vsensor"
	"gsn/internal/wrappers"
)

// Options configures a container. The zero value is a working
// in-memory, real-time container.
type Options struct {
	// Name identifies the container (node) in logs and the directory.
	Name string
	// Clock drives timestamping, windows and rate control. Nil means
	// the system clock; tests install a manual clock.
	Clock stream.Clock
	// DataDir enables permanent storage for descriptors that request
	// it. Empty disables persistence.
	DataDir string
	// Registry supplies wrapper factories; nil means the process-wide
	// default registry.
	Registry *wrappers.Registry
	// NodeAddress is the externally reachable address published to the
	// directory (e.g. "http://host:22001").
	NodeAddress string
	// DirectoryTTL is the publication lifetime (default 5 minutes).
	DirectoryTTL time.Duration
	// Directory lets multiple in-process containers share one registry
	// (tests, examples); nil creates a private one.
	Directory *directory.Registry
	// Notify tunes the notification manager.
	Notify notify.Options
	// SyncProcessing processes triggers inline on the producing
	// goroutine instead of through the worker pool. Deterministic mode
	// for tests and benchmarks.
	SyncProcessing bool
	// DisableHashJoin forces nested-loop joins (ablation knob).
	DisableHashJoin bool
	// MaxQueryRows bounds query results (0 = engine default).
	MaxQueryRows int
	// Logger receives warnings and supervision events; nil silences
	// them. *log.Logger satisfies it.
	Logger Logger
	// SuperviseInterval is the supervision loop period (default 1s;
	// the loop only runs in asynchronous mode).
	SuperviseInterval time.Duration
	// MaxWrapperRestarts bounds consecutive restarts of a silent
	// source's wrapper before supervision marks the source terminally
	// failed (default 8; negative = unlimited). Restart attempts pace
	// themselves with backoff either way.
	MaxWrapperRestarts int
	// StorageFS substitutes the filesystem the storage layer opens its
	// WAL and history files through — the fault-injection seam
	// (storage.NewFaultFS). Nil means the real filesystem.
	StorageFS storage.FS
}

// Logger is the minimal logging contract the container needs;
// *log.Logger satisfies it.
type Logger interface {
	Printf(format string, v ...any)
}

// Container is one GSN node runtime.
type Container struct {
	opts     Options
	name     string
	clock    stream.Clock
	store    *storage.Store
	notifier *notify.Manager
	dir      *directory.Registry
	acl      *access.Controller
	keys     *integrity.KeyRing
	metrics  *metrics.Registry
	registry *wrappers.Registry
	queries  *QueryRepository
	results  *resultCache

	// locals is the composition bus: output streams fanning out to the
	// local sources of downstream sensors (its own lock; never held
	// while delivering).
	locals *localFanout

	// lifecycle serialises multi-step sensor lifecycle operations
	// (deploy, undeploy, redeploy swap, cascade, close) against each
	// other. The data path never takes it: triggers, queries and
	// deliveries run under mu/table locks only, so a drain inside a
	// swap cannot deadlock against it.
	lifecycle sync.Mutex

	mu      sync.RWMutex
	sensors map[string]*VirtualSensor
	// deps is the dependency graph: sensor → the upstream sensors its
	// local sources consume. Maintained by Deploy/Redeploy/Undeploy
	// under mu; see graph.go.
	deps   map[string][]string
	closed bool

	// cluster is the injected federation (nil standalone); see
	// cluster.go. routedQueries tracks continuous queries forwarded to
	// owning peers, keyed by the negative ids handed to clients.
	clusterMu     sync.RWMutex
	cluster       Cluster
	routedMu      sync.Mutex
	routedQueries map[int64]func()
	routedNext    int64

	superviseStop chan struct{}
	superviseDone chan struct{}
}

// New creates and starts a container.
func New(opts Options) (*Container, error) {
	if opts.Clock == nil {
		opts.Clock = stream.SystemClock()
	}
	if opts.Registry == nil {
		opts.Registry = wrappers.Default()
	}
	if opts.Name == "" {
		opts.Name = "gsn-node"
	}
	if opts.SuperviseInterval <= 0 {
		opts.SuperviseInterval = time.Second
	}
	store, err := storage.NewStore(opts.Clock, opts.DataDir)
	if err != nil {
		return nil, err
	}
	if opts.StorageFS != nil {
		store.SetFS(opts.StorageFS)
	}
	reg := metrics.NewRegistry()
	// WAL append/flush failures — including asynchronous group-commit
	// losses — surface on this counter.
	store.SetLogErrorCounter(reg.Counter("storage_log_errors"))
	// Every time a degraded table's recovery loop re-arms its WAL and
	// history tiers, this ticks — the self-healing success signal.
	store.SetWalReopenCounter(reg.Counter("wal_reopens_total"))
	// History-tier (disk storage) activity: page and buffer-pool traffic
	// plus checkpoint count, aggregated over every history table.
	store.SetHistoryMetrics(&storage.HistoryMetrics{
		PagesRead:     reg.Counter("pages_read"),
		PagesWritten:  reg.Counter("pages_written"),
		PoolHits:      reg.Counter("pool_hits"),
		PoolEvictions: reg.Counter("pool_evictions"),
		Checkpoints:   reg.Counter("checkpoints_total"),
	})
	dir := opts.Directory
	if dir == nil {
		dir = directory.NewRegistry(opts.Clock, opts.DirectoryTTL)
	}
	c := &Container{
		opts:     opts,
		name:     opts.Name,
		clock:    opts.Clock,
		store:    store,
		notifier: notify.NewManager(opts.Notify),
		dir:      dir,
		acl:      access.NewController(),
		keys:     integrity.NewKeyRing(),
		metrics:  reg,
		registry: opts.Registry,
		queries:  NewQueryRepository(reg),
		sensors:  make(map[string]*VirtualSensor),
		deps:     make(map[string][]string),
		locals:   newLocalFanout(),
	}
	c.results = newResultCache(store, reg)
	if !opts.SyncProcessing {
		c.superviseStop = make(chan struct{})
		c.superviseDone = make(chan struct{})
		go c.supervise()
	}
	return c, nil
}

// engineOpts builds the SQL engine options for this container.
func (c *Container) engineOpts() sqlengine.Options {
	return sqlengine.Options{
		Clock:           c.clock,
		DisableHashJoin: c.opts.DisableHashJoin,
		MaxRows:         c.opts.MaxQueryRows,
	}
}

// Deploy validates a descriptor and brings the virtual sensor online:
// wrapper instantiation, window tables, worker pool, directory
// publication. Local sources are recorded as dependency-graph edges;
// every upstream they name must already be deployed (see DeployAll for
// batches). Deployment is atomic — on any error nothing remains.
func (c *Container) Deploy(desc *vsensor.Descriptor) error {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	return c.deploy(desc)
}

// deploy is Deploy with the lifecycle mutex held.
func (c *Container) deploy(desc *vsensor.Descriptor) error {
	if desc == nil {
		return fmt.Errorf("core: nil descriptor")
	}
	if err := desc.Validate(); err != nil {
		return err
	}
	name := stream.CanonicalName(desc.Name)
	deps := desc.LocalDependencies()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("core: container %s is closed", c.name)
	}
	if _, exists := c.sensors[name]; exists {
		c.mu.Unlock()
		return fmt.Errorf("core: virtual sensor %s is already deployed", name)
	}
	if err := c.checkDepsLocked(name, deps); err != nil {
		c.mu.Unlock()
		return err
	}
	vs, err := newVirtualSensor(c, desc, nil)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.sensors[name] = vs
	c.deps[name] = deps
	c.mu.Unlock()

	if err := vs.start(); err != nil {
		c.removeSensor(name, vs, false)
		return err
	}
	c.dir.Publish(name, c.opts.NodeAddress, desc.MetadataMap(), c.opts.DirectoryTTL)
	for _, n := range desc.Notify {
		if err := c.attachNotification(name, n); err != nil {
			c.logf("gsn: %s: %v", name, err)
		}
	}
	c.metrics.Counter("deployments").Inc()
	c.metrics.Counter("deploys_total").Inc()
	c.logf("gsn: deployed %s (pool-size %d, %d input stream(s), %d local dep(s))",
		name, desc.LifeCycle.PoolSize, len(desc.Streams), len(deps))
	return nil
}

// DeployXML parses and deploys a descriptor document.
func (c *Container) DeployXML(data []byte) error {
	desc, err := vsensor.Parse(data)
	if err != nil {
		return err
	}
	return c.Deploy(desc)
}

// attachNotification wires one declarative <notification> element.
func (c *Container) attachNotification(sensor string, n vsensor.Notification) error {
	var ch notify.Channel
	switch n.Channel {
	case "log":
		w := c.opts.Logger
		if w == nil {
			return nil // nowhere to log; silently skip
		}
		ch = notify.FuncChannel{ChannelName: "log", Fn: func(ev notify.Event) error {
			data, err := notify.MarshalEvent(ev)
			if err != nil {
				return err
			}
			w.Printf("notify %s #%d %s", ev.Sensor, ev.Seq, data)
			return nil
		}}
	case "webhook":
		ch = notify.NewWebhookChannel(n.Target)
	case "file":
		fc, err := notify.NewFileChannel(n.Target)
		if err != nil {
			return err
		}
		ch = fc
	default:
		return fmt.Errorf("core: unknown notification channel %q", n.Channel)
	}
	_, err := c.notifier.Subscribe(sensor, ch)
	return err
}

// Undeploy removes a virtual sensor: wrappers stop, tables drop,
// subscriptions and client queries for it are cancelled, the directory
// entry is withdrawn. Running queries finish first (pool drain). A
// sensor other sensors consume through local sources refuses to
// undeploy — remove the dependents first or use UndeployCascade.
func (c *Container) Undeploy(name string) error {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	return c.undeploy(name)
}

// undeploy is Undeploy with the lifecycle mutex held.
func (c *Container) undeploy(name string) error {
	canonical := stream.CanonicalName(name)
	c.mu.Lock()
	vs, ok := c.sensors[canonical]
	if ok {
		if deps := c.dependentsLocked(canonical); len(deps) > 0 {
			c.mu.Unlock()
			return fmt.Errorf("core: virtual sensor %s has local dependents %v; undeploy them first or use UndeployCascade",
				canonical, deps)
		}
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: virtual sensor %s is not deployed", canonical)
	}
	c.removeSensor(canonical, vs, true)
	c.notifier.UnsubscribeSensor(canonical)
	c.queries.UnregisterSensor(canonical)
	c.dir.Unpublish(canonical, c.opts.NodeAddress)
	c.metrics.Counter("undeployments").Inc()
	c.logf("gsn: undeployed %s", canonical)
	return nil
}

// removeSensor tears a runtime down. destroyState additionally deletes
// the output table's on-disk history state (pages, index, WAL) — set
// on explicit undeploy, where keeping files for a sensor that no
// longer exists would orphan them; container shutdown and deploy
// rollback keep the files for the next open.
func (c *Container) removeSensor(name string, vs *VirtualSensor, destroyState bool) {
	vs.stop()
	c.mu.Lock()
	delete(c.sensors, name)
	delete(c.deps, name)
	c.mu.Unlock()
	c.dropSourceTables(vs)
	drop := c.store.DropTable
	if destroyState {
		drop = c.store.DestroyTable
	}
	if err := drop(name); err != nil {
		c.logf("gsn: %s: %v", name, err)
	}
}

// dropSourceTables removes a runtime's window tables (not its output).
func (c *Container) dropSourceTables(vs *VirtualSensor) {
	for _, in := range vs.streams {
		for _, src := range in.sources {
			if err := c.store.DropTable(src.table.Name()); err != nil {
				c.logf("gsn: %s: %v", vs.name, err)
			}
		}
	}
}

// preflight exercises every fallible construction step of a descriptor
// without touching container state: storage policy, windows, wrapper
// instantiation (factories are pure constructors — nothing starts).
// Redeploy runs it before tearing anything down, so a bad replacement
// descriptor leaves the old sensor serving.
//
// Keep in lockstep with newVirtualSensor/buildSource: any fallible
// step added there must be mirrored here, or a redeploy can pass
// preflight and then fail mid-swap (newVirtualSensor carries the
// matching reminder).
func (c *Container) preflight(desc *vsensor.Descriptor) error {
	if _, ok := storage.ParseSyncPolicy(desc.Storage.Sync); !ok {
		return fmt.Errorf("core: %s: unknown storage sync policy %q", desc.Name, desc.Storage.Sync)
	}
	if desc.Storage.FlushInterval != "" {
		if _, err := time.ParseDuration(desc.Storage.FlushInterval); err != nil {
			return fmt.Errorf("core: %s: storage flush-interval: %w", desc.Name, err)
		}
	}
	if _, err := desc.StorageWindow(); err != nil {
		return err
	}
	for i := range desc.Streams {
		for j := range desc.Streams[i].Sources {
			spec := desc.Streams[i].Sources[j]
			if _, err := stream.ParseWindow(spec.StorageSize); err != nil {
				return err
			}
			if spec.Address.Wrapper == vsensor.LocalWrapperKind {
				w, err := newCompositionSource(c, spec)
				if err != nil {
					return err
				}
				// A cluster remote edge built only for preflight was
				// never started; Stop is an idempotent release.
				_ = w.Stop()
				continue
			}
			params := wrappers.Params{}
			for _, p := range spec.Address.Predicates {
				params[p.Key] = p.Value()
			}
			seed, err := params.Int("seed", 0)
			if err != nil {
				return err
			}
			if _, err := c.registry.New(spec.Address.Wrapper, wrappers.Config{
				Name:   desc.Name + "/preflight",
				Params: params,
				Seed:   int64(seed),
				Clock:  c.clock,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Redeploy replaces a running sensor's configuration on the fly — the
// paper's §6 reconfiguration scenario — as a graceful swap, not an
// undeploy+deploy. The replacement descriptor is preflighted first, so
// any validation, storage or wrapper error leaves the old sensor
// serving untouched. When the output schema and storage policy are
// unchanged, the swap preserves state: the output table (rows and WAL),
// registered client queries, notification subscriptions and downstream
// local edges all survive; in-flight triggers drain before the old
// runtime stops (counted in redeploys_preserved). A schema or storage
// change falls back to a full replace, which is refused while local
// dependents exist (their windows are bound to the old schema) and
// rolls back to the old configuration if the fresh deploy fails.
func (c *Container) Redeploy(desc *vsensor.Descriptor) error {
	if desc == nil {
		return fmt.Errorf("core: nil descriptor")
	}
	if err := desc.Validate(); err != nil {
		return err
	}
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	canonical := stream.CanonicalName(desc.Name)
	c.mu.RLock()
	old, exists := c.sensors[canonical]
	c.mu.RUnlock()
	if !exists {
		return c.deploy(desc)
	}

	newSchema, err := desc.OutputSchema()
	if err != nil {
		return err
	}
	deps := desc.LocalDependencies()
	preserve := old.outSchema.Equal(newSchema) && old.desc.Storage == desc.Storage

	c.mu.RLock()
	err = c.checkDepsLocked(canonical, deps)
	if err == nil && c.wouldCycleLocked(canonical, deps) {
		err = fmt.Errorf("core: redeploying %s with dependencies %v would create a cycle", canonical, deps)
	}
	var dependents []string
	if err == nil && !preserve {
		dependents = c.dependentsLocked(canonical)
	}
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	if len(dependents) > 0 {
		return fmt.Errorf("core: redeploying %s would change its output schema or storage, but %v consume it; undeploy them first",
			canonical, dependents)
	}
	if err := c.preflight(desc); err != nil {
		return fmt.Errorf("core: redeploy %s rejected (old configuration still serving): %w", canonical, err)
	}

	if preserve {
		return c.swapPreserving(canonical, old, desc, deps)
	}

	// Full replace: classic undeploy+deploy, now with rollback — a
	// failed deploy restores the old configuration instead of leaving
	// the sensor gone.
	oldDesc := old.desc
	if err := c.undeploy(canonical); err != nil {
		return err
	}
	if err := c.deploy(desc); err != nil {
		if rbErr := c.deploy(oldDesc); rbErr != nil {
			return fmt.Errorf("core: redeploy %s failed (%w) and rollback failed too: %v", canonical, err, rbErr)
		}
		return fmt.Errorf("core: redeploy %s failed (old configuration restored): %w", canonical, err)
	}
	return nil
}

// swapPreserving is the state-preserving half of Redeploy: the output
// table, client queries, notification subscriptions and downstream
// local subscriptions stay in place while the runtime underneath them
// is replaced. Commit order: drain the old runtime, drop its source
// windows, build and start the replacement against the preserved
// output table. Any failure after the drain rebuilds the old runtime
// from its descriptor (its wrappers were running moments ago), so the
// sensor keeps serving either way.
func (c *Container) swapPreserving(name string, old *VirtualSensor, desc *vsensor.Descriptor, deps []string) error {
	// Drain: stop wrappers, let queued triggers finish against the old
	// windows, then retire them. Downstream subscribers keep receiving
	// through the drain (the fanout is keyed by name, not runtime).
	old.stop()
	c.dropSourceTables(old)

	install := func(d *vsensor.Descriptor, dependsOn []string) error {
		vs, err := newVirtualSensor(c, d, old.outTable)
		if err != nil {
			return err
		}
		if err := vs.start(); err != nil {
			c.dropSourceTables(vs)
			return err
		}
		c.mu.Lock()
		c.sensors[name] = vs
		c.deps[name] = dependsOn
		c.mu.Unlock()
		return nil
	}

	if err := install(desc, deps); err != nil {
		oldDesc := old.desc
		if rbErr := install(oldDesc, oldDesc.LocalDependencies()); rbErr != nil {
			// Rollback failed too: tear the whole subtree down — the
			// sensor and its local dependents — so no half-wired runtime
			// or dangling dependency edge lingers.
			c.mu.RLock()
			victims := c.transitiveDependentsLocked(name)
			c.mu.RUnlock()
			for _, v := range victims {
				if uErr := c.undeploy(v); uErr != nil {
					c.logf("gsn: %s: tearing down dependent %s: %v", name, v, uErr)
				}
				c.metrics.Counter("cascade_undeploys").Inc()
			}
			c.mu.Lock()
			delete(c.sensors, name)
			delete(c.deps, name)
			c.mu.Unlock()
			c.notifier.UnsubscribeSensor(name)
			c.queries.UnregisterSensor(name)
			c.dir.Unpublish(name, c.opts.NodeAddress)
			if dropErr := c.store.DropTable(name); dropErr != nil {
				c.logf("gsn: %s: %v", name, dropErr)
			}
			return fmt.Errorf("core: redeploy %s failed (%w) and rollback failed too: %v", name, err, rbErr)
		}
		return fmt.Errorf("core: redeploy %s failed (old configuration restored): %w", name, err)
	}

	c.dir.Publish(name, c.opts.NodeAddress, desc.MetadataMap(), c.opts.DirectoryTTL)
	c.metrics.Counter("deploys_total").Inc()
	c.metrics.Counter("redeploys_preserved").Inc()
	c.logf("gsn: redeployed %s preserving output table, %d client quer(y|ies) and downstream edges",
		name, c.queries.GroupCount(name))
	return nil
}

// Sensor looks up a deployed virtual sensor.
func (c *Container) Sensor(name string) (*VirtualSensor, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vs, ok := c.sensors[stream.CanonicalName(name)]
	return vs, ok
}

// Sensors lists deployed sensors sorted by name.
func (c *Container) Sensors() []*VirtualSensor {
	c.mu.RLock()
	out := make([]*VirtualSensor, 0, len(c.sensors))
	for _, vs := range c.sensors {
		out = append(out, vs)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Query runs a one-shot SQL query over the container's stored streams
// (virtual sensor outputs and source windows). On a clustered node,
// queries over a single base table owned (partly or wholly) by peers
// are federated — partial-aggregate shipping, whole-statement routing,
// or row union; see queryRouted in cluster.go. Results over purely
// local tables are served from the version-stamped result cache when
// every referenced table is unchanged since the last identical query,
// so repeated reads between inserts are free; callers must treat the
// relation as read-only.
func (c *Container) Query(sql string) (*sqlengine.Relation, error) {
	start := time.Now()
	rel, err := c.queryRouted(sql)
	c.metrics.Histogram("adhoc_query_time").Observe(time.Since(start))
	return rel, err
}

// LocalQuery runs a one-shot SQL query strictly against this node's
// stored streams, never consulting the cluster. Peer-serving endpoints
// (/p2p/query and friends) must use this path: a node answering a
// coordinator must not re-route the statement back out, or two nodes
// owning the same sensor would recurse forever.
func (c *Container) LocalQuery(sql string) (*sqlengine.Relation, error) {
	return c.results.Query(sql, c.engineOpts())
}

// RegisterQuery adds a continuous client query against a deployed
// sensor (the query repository path; see Figure 4). The statement is
// compiled against the sensor's output schema at registration, and
// identical SQL registered by many clients shares one evaluation. On a
// clustered node, a sensor deployed only on a peer is registered there
// and result revisions stream back; routed registrations get negative
// ids (local ones are positive).
func (c *Container) RegisterQuery(sensor, sql string, sampling float64, cb func(*sqlengine.Relation)) (int64, error) {
	canonical := stream.CanonicalName(sensor)
	c.mu.RLock()
	vs, ok := c.sensors[canonical]
	c.mu.RUnlock()
	if !ok {
		return c.registerRouted(canonical, sql, sampling, cb)
	}
	return c.queries.Register(canonical, sql, sampling, cb, vs.outTable)
}

// UnregisterQuery removes a continuous client query (routed ones —
// negative ids — included).
func (c *Container) UnregisterQuery(id int64) error {
	if id < 0 {
		c.routedMu.Lock()
		stop, ok := c.routedQueries[id]
		delete(c.routedQueries, id)
		c.routedMu.Unlock()
		if !ok {
			return fmt.Errorf("core: unknown routed query %d", id)
		}
		stop()
		return nil
	}
	return c.queries.Unregister(id)
}

// Subscribe attaches a notification channel to a sensor's output.
func (c *Container) Subscribe(sensor string, ch notify.Channel) (int64, error) {
	return c.notifier.Subscribe(sensor, ch)
}

// Unsubscribe detaches a notification subscription.
func (c *Container) Unsubscribe(id int64) error { return c.notifier.Unsubscribe(id) }

// Pulse drives every pull-capable wrapper of every sensor once (see
// VirtualSensor.Pulse) and returns the number of injected elements.
func (c *Container) Pulse() int {
	total := 0
	for _, vs := range c.Sensors() {
		total += vs.Pulse()
	}
	return total
}

// PulseBatch drives every batch-capable wrapper once, injecting up to
// max elements per source as one burst through the batch ingestion
// path.
func (c *Container) PulseBatch(max int) int {
	total := 0
	for _, vs := range c.Sensors() {
		total += vs.PulseBatch(max)
	}
	return total
}

// supervise is the life-cycle manager's background loop: it restarts
// wrappers whose sources have gone silent past their gap timeout and
// refreshes directory publications. Restarts pace themselves through a
// per-source backoff instead of firing every tick, and a source whose
// restarts keep not reviving it goes terminally failed (Health reports
// it; a redeploy resets it) rather than being torn down and restarted
// forever.
func (c *Container) supervise() {
	defer close(c.superviseDone)
	ticker := time.NewTicker(c.opts.SuperviseInterval)
	defer ticker.Stop()
	republishEvery := c.opts.DirectoryTTL
	if republishEvery <= 0 {
		republishEvery = 5 * time.Minute
	}
	republishEvery /= 2
	lastRepublish := time.Now()
	for {
		select {
		case <-c.superviseStop:
			return
		case <-ticker.C:
		}
		for _, vs := range c.Sensors() {
			for _, in := range vs.streams {
				for _, src := range in.sources {
					c.superviseSource(vs, src)
				}
			}
		}
		if time.Since(lastRepublish) >= republishEvery {
			lastRepublish = time.Now()
			for _, vs := range c.Sensors() {
				c.dir.Publish(vs.name, c.opts.NodeAddress, vs.desc.MetadataMap(), c.opts.DirectoryTTL)
			}
			c.dir.GC()
		}
	}
}

// superviseSource runs one supervision tick for one stream source.
func (c *Container) superviseSource(vs *VirtualSensor, src *sourceRuntime) {
	if !src.gap.Check() {
		// Flowing again (or no gap timeout configured): settle the
		// restart escalation so the next outage retries promptly.
		if src.restartFails.Load() != 0 {
			src.restartFails.Store(0)
			src.restartBo.Reset()
		}
		return
	}
	if src.failed.Load() {
		return // terminal: operator intervention (redeploy) required
	}
	now := time.Now()
	if now.UnixNano() < src.notBefore.Load() {
		return // waiting out the restart backoff
	}
	limit := c.opts.MaxWrapperRestarts
	if limit == 0 {
		limit = 8
	}
	if limit > 0 && src.restartFails.Load() >= uint64(limit) {
		reason := fmt.Sprintf("wrapper restarted %d times without the source recovering", limit)
		src.failReason.Store(reason)
		src.failed.Store(true)
		c.metrics.Counter("wrapper_restarts_failed").Inc()
		c.logf("gsn: %s/%s: %s; marking source failed", vs.name, src.alias, reason)
		return
	}
	c.logf("gsn: %s/%s: source silent beyond gap-timeout, restarting wrapper",
		vs.name, src.alias)
	src.restarts.Add(1)
	src.restartFails.Add(1)
	c.metrics.Counter("wrapper_restarts").Inc()
	src.notBefore.Store(now.Add(src.restartBo.Next()).UnixNano())
	src.wrapper.Stop()
	if err := vs.startWrapper(src); err != nil {
		vs.recordError(err)
		c.metrics.Counter("wrapper_restarts_failed").Inc()
	}
}

// Notifier exposes the notification manager (web layer, tests).
func (c *Container) Notifier() *notify.Manager { return c.notifier }

// Directory exposes the discovery registry.
func (c *Container) Directory() *directory.Registry { return c.dir }

// Store exposes the storage layer.
func (c *Container) Store() *storage.Store { return c.store }

// Metrics exposes the metrics registry.
func (c *Container) Metrics() *metrics.Registry { return c.metrics }

// MetricsSnapshot renders the registry plus the caches that live
// outside it: the process-wide SQL statement cache and the container's
// version-stamped result cache. /api/metrics serves this.
func (c *Container) MetricsSnapshot() map[string]any {
	out := c.metrics.Snapshot()
	sc := sqlengine.DefaultStatementCacheStats()
	out["stmt_cache_hits"] = sc.Hits
	out["stmt_cache_misses"] = sc.Misses
	out["stmt_cache_size"] = sc.Size
	out["result_cache_size"] = c.results.Len()
	// Health gauges are computed live: they describe the current state,
	// not an accumulated count. The p2p replication counters aggregate
	// the same way, summed over every replicating source wrapper, so
	// they need no per-wrapper metric plumbing.
	degraded, failed := 0, 0
	var rep wrappers.ReplicationStats
	for _, vs := range c.Sensors() {
		switch vs.Health().State {
		case Degraded:
			degraded++
		case Failed:
			failed++
		}
		for _, in := range vs.streams {
			for _, src := range in.sources {
				r, ok := src.wrapper.(wrappers.Replicator)
				if !ok {
					continue
				}
				s := r.ReplicationStats()
				rep.Fetches += s.Fetches
				rep.Failures += s.Failures
				rep.Resyncs += s.Resyncs
				rep.EpochMismatches += s.EpochMismatches
				rep.DuplicatesDropped += s.DuplicatesDropped
			}
		}
	}
	out["degraded_sensors"] = degraded
	out["failed_sensors"] = failed
	// Ingest-lane counters aggregate live over every table with lanes
	// enabled (same pattern as the p2p counters: summed on read, no
	// per-table metric plumbing). The histogram buckets are merge batch
	// sizes in [2^i, 2^(i+1)).
	var lanePublished, laneStalls, laneMerges, laneMerged, laneCollapsed uint64
	var laneHist []uint64
	for _, name := range c.store.List() {
		table, ok := c.store.Table(name)
		if !ok {
			continue
		}
		ls := table.Stats().Lanes
		if ls == nil {
			continue
		}
		lanePublished += ls.Published
		laneStalls += ls.Stalls
		laneMerges += ls.Merges
		laneMerged += ls.MergedElems
		laneCollapsed += ls.Collapsed
		if laneHist == nil {
			laneHist = make([]uint64, len(ls.BatchSizes))
		}
		for i, v := range ls.BatchSizes {
			laneHist[i] += v
		}
	}
	if laneHist != nil {
		out["lane_published_total"] = lanePublished
		out["lane_stalls_total"] = laneStalls
		out["lane_merges_total"] = laneMerges
		out["lane_merged_elems_total"] = laneMerged
		out["lane_collapsed_total"] = laneCollapsed
		out["lane_merge_batch_hist"] = laneHist
	}
	out["p2p_fetches_total"] = rep.Fetches
	out["p2p_fetch_failures_total"] = rep.Failures
	out["p2p_resyncs_total"] = rep.Resyncs
	out["p2p_epoch_mismatches"] = rep.EpochMismatches
	out["p2p_duplicates_dropped"] = rep.DuplicatesDropped
	return out
}

// ACL exposes the access controller.
func (c *Container) ACL() *access.Controller { return c.acl }

// Keys exposes the integrity keyring.
func (c *Container) Keys() *integrity.KeyRing { return c.keys }

// QueryRepositoryRef exposes the client query repository.
func (c *Container) QueryRepositoryRef() *QueryRepository { return c.queries }

// Clock returns the container clock.
func (c *Container) Clock() stream.Clock { return c.clock }

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// NodeAddress returns the published node address.
func (c *Container) NodeAddress() string { return c.opts.NodeAddress }

// Close undeploys every sensor and releases resources.
func (c *Container) Close() error {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	// Tear down most-downstream first so no step severs a live local
	// edge while its consumer still runs: every sensor's transitive
	// dependents (already leaf-first) precede it.
	names := make([]string, 0, len(c.sensors))
	seen := make(map[string]bool, len(c.sensors))
	for name := range c.sensors {
		if seen[name] {
			continue
		}
		for _, d := range c.transitiveDependentsLocked(name) {
			if !seen[d] {
				seen[d] = true
				names = append(names, d)
			}
		}
		seen[name] = true
		names = append(names, name)
	}
	c.mu.Unlock()

	c.stopRoutedQueries()
	if c.superviseStop != nil {
		close(c.superviseStop)
		<-c.superviseDone
	}
	for _, name := range names {
		c.mu.RLock()
		vs := c.sensors[name]
		c.mu.RUnlock()
		if vs != nil {
			c.removeSensor(name, vs, false)
			c.dir.Unpublish(name, c.opts.NodeAddress)
		}
	}
	c.queries.Close()
	c.notifier.Close()
	return c.store.Close()
}

func (c *Container) logf(format string, args ...any) {
	if c.opts.Logger != nil {
		c.opts.Logger.Printf(format, args...)
	}
}
