package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gsn/internal/storage"
	"gsn/internal/stream"
)

// TestSupervisionBackoffAndTerminalFailure: a source that stays silent
// forever must be restarted with escalating backoff, and once the
// restart budget is exhausted the source transitions to terminal
// failed — surfaced through Stats, Health, and the metrics registry —
// instead of being restarted in a tight loop for the rest of the
// process.
func TestSupervisionBackoffAndTerminalFailure(t *testing.T) {
	reg, fw := registryWithFlaky(t, stream.SystemClock(), 0)
	c, err := New(Options{
		Registry:           reg,
		SuperviseInterval:  10 * time.Millisecond,
		MaxWrapperRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.DeployXML([]byte(strings.Replace(flakyDescriptor,
		`<address wrapper="flaky"/>`,
		`<address wrapper="flaky"><predicate key="gap-timeout" val="30"/></address>`, 1)))
	if err != nil {
		t.Fatal(err)
	}

	// Never pulse: the source is silent past its gap-timeout forever, so
	// each restart fails to revive it and the budget runs out.
	sawDegraded := false
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := c.Health()
		if h.State == Degraded {
			sawDegraded = true
		}
		if h.State == Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached failed: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = sawDegraded // degraded is a transient step; observing it is racy, so not asserted

	h := c.Health()
	var report HealthReport
	for _, r := range h.Sensors {
		report = r
	}
	if report.State != Failed {
		t.Fatalf("sensor report = %+v, want failed", report)
	}
	if !strings.Contains(report.Reason, "restarted 2 times") {
		t.Errorf("failure reason %q does not name the exhausted budget", report.Reason)
	}

	vs, _ := c.Sensor("fragile")
	st := vs.Stats()
	src := st.Sources[0]
	if !src.Failed || src.FailReason == "" {
		t.Errorf("source stats = %+v, want terminal failed with reason", src)
	}
	if src.RestartFails < 2 {
		t.Errorf("restart fails = %d, want >= 2", src.RestartFails)
	}
	if got := c.Metrics().Counter("wrapper_restarts").Value(); got < 2 {
		t.Errorf("wrapper_restarts = %d, want >= 2", got)
	}
	if got := c.Metrics().Counter("wrapper_restarts_failed").Value(); got == 0 {
		t.Error("wrapper_restarts_failed not incremented")
	}

	// Terminal means terminal: no more restart attempts arrive.
	fw.mu.Lock()
	startsAtFailure := fw.starts
	fw.mu.Unlock()
	time.Sleep(100 * time.Millisecond)
	fw.mu.Lock()
	startsLater := fw.starts
	fw.mu.Unlock()
	if startsLater != startsAtFailure {
		t.Errorf("failed source restarted again: starts %d -> %d", startsAtFailure, startsLater)
	}

	if snap := c.MetricsSnapshot(); fmt.Sprint(snap["failed_sensors"]) != "1" {
		t.Errorf("failed_sensors gauge = %v, want 1", snap["failed_sensors"])
	}
}

// TestRestartBackoffSettlesWhenSourceRecovers: a gap that closes again
// must reset the consecutive-failure count, so a source that blips
// every few minutes never accumulates toward the terminal budget.
func TestRestartBackoffSettlesWhenSourceRecovers(t *testing.T) {
	reg, _ := registryWithFlaky(t, stream.SystemClock(), 0)
	c, err := New(Options{
		Registry:           reg,
		SuperviseInterval:  10 * time.Millisecond,
		MaxWrapperRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.DeployXML([]byte(strings.Replace(flakyDescriptor,
		`<address wrapper="flaky"/>`,
		`<address wrapper="flaky"><predicate key="gap-timeout" val="40"/></address>`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := c.Sensor("fragile")

	// Let the gap open and at least one restart accrue.
	waitUntil(t, "first restart", func() bool {
		return vs.Stats().Sources[0].RestartFails >= 1
	})
	// Data flows again: the supervision loop must forgive the streak.
	c.Pulse()
	waitUntil(t, "restart streak reset", func() bool {
		return vs.Stats().Sources[0].RestartFails == 0
	})
	if vs.Stats().Sources[0].Failed {
		t.Error("recovered source marked failed")
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosRoot is the physical tier of the chaos pipeline: durable WAL,
// small hot window, disk history — so injected faults hit the log, the
// history pages, and the meta slots of a real workload.
const chaosRoot = `
<virtual-sensor name="c0">
  <output-structure><field name="value" type="integer"/></output-structure>
  <storage permanent-storage="true" history="disk" size="8" sync="always"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="timer"/>
      <query>select tick as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`

// chaosMid adds a second durable tier on the asynchronous group-commit
// path, so background-flush faults are part of the storm too.
const chaosMid = `
<virtual-sensor name="c1">
  <output-structure><field name="value" type="integer"/></output-structure>
  <storage permanent-storage="true" size="500" sync="interval" flush-interval="2ms"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="local"><predicate key="sensor" val="c0"/></address>
      <query>select value + 1 as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`

const chaosTop = `
<virtual-sensor name="c2">
  <output-structure><field name="value" type="integer"/></output-structure>
  <storage size="500"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="local"><predicate key="sensor" val="c1"/></address>
      <query>select value + 1 as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`

// TestChaos runs a three-tier pipeline under randomized injected disk
// faults and holds the runtime to the self-healing contract:
//
//  1. the container keeps answering queries through every fault,
//  2. ingestion never stops (every pulse becomes an output),
//  3. health converges back to healthy after each fault clears, and
//  4. whatever the healed store reports durable really survives a
//     restart — rows are not silently dropped between WAL, history,
//     and replay.
func TestChaos(t *testing.T) {
	dir := t.TempDir()
	ffs := storage.NewFaultFS(nil)
	clock := stream.NewManualClock(1_000_000)
	c, err := New(Options{
		Clock:          clock,
		DataDir:        dir,
		SyncProcessing: true,
		StorageFS:      ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, desc := range []string{chaosRoot, chaosMid, chaosTop} {
		if err := c.DeployXML([]byte(desc)); err != nil {
			t.Fatal(err)
		}
	}

	// The fault arsenal: WAL write errors (clean and torn), history
	// page-write errors (data pages live above the two 8 KiB meta
	// slots), meta-slot errors, and fsync failures on the history tier.
	arsenal := []storage.Fault{
		{Op: storage.OpWrite, Path: ".gsnlog", Count: -1},
		{Op: storage.OpWrite, Path: ".gsnlog", Count: -1, Short: 7},
		{Op: storage.OpWriteAt, Path: ".gsnhist", OffLow: 0, OffHigh: 16384, Count: -1},
		{Op: storage.OpWriteAt, Path: ".gsnhist", OffLow: 16384, OffHigh: 1 << 40, Count: -1},
		{Op: storage.OpSync, Path: ".gsnhist", Count: -1},
	}
	rng := rand.New(rand.NewSource(7))
	total := 0
	pulse := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if got := c.Pulse(); got != 1 {
				t.Fatalf("pulse injected %d elements", got)
			}
			total++
			// Invariant 1: reads keep serving mid-fault. The top tier is
			// RAM-only, so the query must succeed even while the durable
			// tiers below are degraded.
			rel, err := c.Query("select count(*) from c2")
			if err != nil {
				t.Fatalf("query failed during chaos: %v", err)
			}
			if len(rel.Rows) != 1 {
				t.Fatalf("count(*) returned %d rows", len(rel.Rows))
			}
		}
	}

	for round := 0; round < 6; round++ {
		pulse(8) // calm traffic
		fault := arsenal[rng.Intn(len(arsenal))]
		ffs.Inject(fault)
		pulse(12) // traffic through the storm
		ffs.Clear()
		// Invariant 3: once the disk heals, the recovery loops re-arm
		// every degraded tier without operator action.
		deadline := time.Now().Add(10 * time.Second)
		for c.Health().State != Healthy {
			if time.Now().After(deadline) {
				t.Fatalf("round %d (fault %+v): health stuck at %+v",
					round, fault, c.Health())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Invariant 2: ingestion never stopped.
	vs0, _ := c.Sensor("c0")
	if got := vs0.Stats().Outputs; got != uint64(total) {
		t.Errorf("root outputs = %d, want %d (ingestion must not stop under faults)", got, total)
	}
	vs2, _ := c.Sensor("c2")
	if got := vs2.Stats().Outputs; got != uint64(total) {
		t.Errorf("top-tier outputs = %d, want %d", got, total)
	}

	// Invariant 4: what the healed store reports durable survives a
	// restart byte-for-byte. Snapshot the durable row count, restart
	// the node over the same directory (clean filesystem), and compare.
	tab, ok := c.Store().Table("C0")
	if !ok {
		t.Fatal("root table missing")
	}
	durable, err := tab.TimedRange(0, stream.Timestamp(1<<62))
	if err != nil {
		t.Fatalf("TimedRange after final heal: %v", err)
	}
	if len(durable) == 0 {
		t.Fatal("no rows durable after six healed rounds")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2, err := New(Options{Clock: clock, DataDir: dir, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.DeployXML([]byte(chaosRoot)); err != nil {
		t.Fatal(err)
	}
	tab2, ok := c2.Store().Table("C0")
	if !ok {
		t.Fatal("root table missing after restart")
	}
	replayed, err := tab2.TimedRange(0, stream.Timestamp(1<<62))
	if err != nil {
		t.Fatalf("TimedRange after restart: %v", err)
	}
	if len(replayed) < len(durable) {
		t.Errorf("restart lost rows: %d durable before close, %d after replay",
			len(durable), len(replayed))
	}
	if h := c2.Health(); h.State != Healthy {
		t.Errorf("restarted node health = %+v, want healthy", h)
	}
}
