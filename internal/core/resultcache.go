package core

import (
	"sync"

	"gsn/internal/metrics"
	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
)

// resultCache memoises ad-hoc query results keyed by (SQL text, the
// identity and version of every table the execution read). Window
// tables carry a monotonic mutation counter (storage.Table.Version), so
// an entry is valid exactly while every dependency resolves to the
// same table object at the same version — repeated identical reads
// between inserts (dashboard refreshes, peer pulls, polling clients)
// are served without re-execution. Statements that call NOW() are
// never cached: their results drift with the clock while the windows
// stand still.
//
// Cached relations are shared: every consumer must treat them as
// read-only, which the web/JSON/CSV serialisers already do.
type resultCache struct {
	store  *storage.Store
	hits   *metrics.Counter
	misses *metrics.Counter

	mu      sync.Mutex
	entries map[string]*resultEntry
	cap     int
}

// resultCacheCap bounds the entry count; like the statement cache, a
// full reset on overflow keeps it bounded without LRU bookkeeping.
const resultCacheCap = 512

type resultEntry struct {
	rel  *sqlengine.Relation
	deps []resultDep
}

// resultDep pins one table read: the entry is valid only while the
// store still resolves name to the same table object (a drop/redeploy
// creates a new one) at the same version.
type resultDep struct {
	name    string
	table   *storage.Table
	version uint64
}

func newResultCache(store *storage.Store, reg *metrics.Registry) *resultCache {
	return &resultCache{
		store:   store,
		hits:    reg.Counter("result_cache_hits"),
		misses:  reg.Counter("result_cache_misses"),
		entries: make(map[string]*resultEntry),
		cap:     resultCacheCap,
	}
}

// recordingCatalog resolves tables against the store while recording
// each table's identity and version. The version is read before the
// scan: an insert racing between the two leaves the entry stamped one
// version behind, which costs a refresh on the next lookup but can
// never serve rows older than the recorded version.
type recordingCatalog struct {
	store *storage.Store
	deps  []resultDep
}

func (rc *recordingCatalog) Relation(name string) (*sqlengine.Relation, error) {
	tab, ok := rc.store.Table(name)
	if !ok {
		return nil, &unknownStreamError{name: name}
	}
	version := tab.Version()
	rel := sqlengine.RelationOfSource(tab)
	rc.deps = append(rc.deps, resultDep{name: tab.Name(), table: tab, version: version})
	return rel, nil
}

// RelationRange implements sqlengine.RangeCatalog with the same
// dependency recording: the disk tier only changes when the hot window
// does (evictions migrate rows and bump the version), so the version
// pin validates tiered results exactly like hot-only ones.
func (rc *recordingCatalog) RelationRange(name string, lo, hi int64) (*sqlengine.Relation, error) {
	tab, ok := rc.store.Table(name)
	if !ok {
		return nil, &unknownStreamError{name: name}
	}
	version := tab.Version()
	elems, err := tab.TimedRange(stream.Timestamp(lo), stream.Timestamp(hi))
	if err != nil {
		return nil, err
	}
	rc.deps = append(rc.deps, resultDep{name: tab.Name(), table: tab, version: version})
	return sqlengine.RelationOfElements(tab.Schema(), elems), nil
}

// unknownStreamError mirrors storeCatalog's error text.
type unknownStreamError struct{ name string }

func (e *unknownStreamError) Error() string {
	return "core: unknown stream \"" + e.name + "\""
}

// Query executes sql, serving from cache when every dependency is
// unchanged.
func (c *resultCache) Query(sql string, opts sqlengine.Options) (*sqlengine.Relation, error) {
	c.mu.Lock()
	entry := c.entries[sql]
	c.mu.Unlock()
	if entry != nil && c.valid(entry) {
		c.hits.Inc()
		return entry.rel, nil
	}
	c.misses.Inc()

	stmt, err := sqlengine.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	rc := &recordingCatalog{store: c.store}
	rel, err := sqlengine.Execute(stmt, rc, opts)
	if err != nil {
		// Failed executions are not cached: the error may be transient
		// (a table appearing on deploy).
		c.invalidate(sql)
		return nil, err
	}
	if sqlengine.Volatile(stmt) {
		c.invalidate(sql)
		return rel, nil
	}

	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.entries = make(map[string]*resultEntry)
	}
	c.entries[sql] = &resultEntry{rel: rel, deps: rc.deps}
	c.mu.Unlock()
	return rel, nil
}

// valid re-checks every dependency against the live store.
func (c *resultCache) valid(entry *resultEntry) bool {
	for _, d := range entry.deps {
		tab, ok := c.store.Table(d.name)
		if !ok || tab != d.table || tab.Version() != d.version {
			return false
		}
	}
	return true
}

func (c *resultCache) invalidate(sql string) {
	c.mu.Lock()
	delete(c.entries, sql)
	c.mu.Unlock()
}

// Len reports the number of cached results (metrics endpoint).
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// interface check: recordingCatalog serves TIMED-range pushdown too.
var _ sqlengine.RangeCatalog = (*recordingCatalog)(nil)
