package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gsn/internal/stream"
)

// historySensorXML deploys a mote-fed sensor whose 5-row window spills
// evicted rows into the on-disk history tier.
const historySensorXML = `
<virtual-sensor name="hist-temp">
  <output-structure>
    <field name="TEMPERATURE" type="double"/>
  </output-structure>
  <storage size="5" permanent-storage="true" sync="none" history="disk"/>
  <input-stream name="in">
    <stream-source alias="src1" storage-size="1">
      <address wrapper="mote">
        <predicate key="sensors" val="temperature"/>
        <predicate key="seed" val="7"/>
      </address>
      <query>select temperature from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>`

func historyContainer(t *testing.T, dir string) (*Container, *stream.ManualClock) {
	t.Helper()
	clock := stream.NewManualClock(1_000_000)
	c, err := New(Options{
		Name:           "hist-node",
		Clock:          clock,
		SyncProcessing: true,
		DataDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, clock
}

// pulseTicking injects n mote readings one millisecond apart, so each
// produced row carries a distinct TIMED value.
func pulseTicking(c *Container, clock *stream.ManualClock, n int) {
	for i := 0; i < n; i++ {
		clock.Advance(time.Millisecond)
		c.Pulse()
	}
}

// TestHistoryQueryServesEvictedRows: the ad-hoc query path must answer
// a WHERE TIMED BETWEEN query from the history tier — rows the 5-row
// hot window evicted long ago — merged with the live window.
func TestHistoryQueryServesEvictedRows(t *testing.T) {
	c, clock := historyContainer(t, t.TempDir())
	deploy(t, c, historySensorXML)
	pulseTicking(c, clock, 40)
	// Everything ever produced, not just the 5-row window.
	rel, err := c.Query(`select count(*) from "hist-temp" where timed between 0 and 99999999999`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(40) {
		t.Fatalf("bounded count over both tiers = %v, want 40", rel.Rows[0][0])
	}
	// The unbounded scan still sees only the hot window.
	rel, err = c.Query(`select count(*) from "hist-temp"`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(5) {
		t.Fatalf("unbounded count = %v, want the 5-row window", rel.Rows[0][0])
	}
	// A bounded sub-range returns exactly the first nine readings (the
	// clock ticks 1ms per pulse from 1000000).
	rel, err = c.Query(`select count(*) from "hist-temp" where timed between 0 and 1000009`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(9) {
		t.Fatalf("sub-range count = %v, want the 9 readings up to timed 1000009", rel.Rows[0][0])
	}
}

// TestUndeployRemovesHistoryFiles: undeploying a history sensor must
// unlink its pages and WAL (the operator removed the sensor, nothing
// may linger); container shutdown must keep them for the next start.
func TestUndeployRemovesHistoryFiles(t *testing.T) {
	dir := t.TempDir()
	c, clock := historyContainer(t, dir)
	deploy(t, c, historySensorXML)
	pulseTicking(c, clock, 20)
	hist := filepath.Join(dir, "HIST-TEMP.gsnhist")
	wal := filepath.Join(dir, "HIST-TEMP.gsnlog")
	if _, err := os.Stat(hist); err != nil {
		t.Fatalf("history file not created: %v", err)
	}
	if _, err := os.Stat(wal); err != nil {
		t.Fatalf("WAL not created: %v", err)
	}
	if err := c.Undeploy("hist-temp"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(hist); !os.IsNotExist(err) {
		t.Fatalf("undeploy left history file behind (stat err %v)", err)
	}
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Fatalf("undeploy left WAL behind (stat err %v)", err)
	}
}

// TestShutdownKeepsHistoryFiles: Close is not an undeploy — the on-disk
// tiers survive and the next container serves the full history again.
func TestShutdownKeepsHistoryFiles(t *testing.T) {
	dir := t.TempDir()
	c, clock := historyContainer(t, dir)
	deploy(t, c, historySensorXML)
	pulseTicking(c, clock, 30)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "HIST-TEMP.gsnhist")); err != nil {
		t.Fatalf("shutdown removed the history file: %v", err)
	}

	c2, _ := historyContainer(t, dir)
	deploy(t, c2, historySensorXML)
	rel, err := c2.Query(`select count(*) from "hist-temp" where timed between 0 and 99999999999`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(30) {
		t.Fatalf("restarted container serves %v historical rows, want 30", rel.Rows[0][0])
	}
}
