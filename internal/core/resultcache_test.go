package core

import (
	"fmt"
	"testing"
	"time"

	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
)

func cacheCounters(c *Container) (hits, misses uint64) {
	return c.Metrics().Counter("result_cache_hits").Value(),
		c.Metrics().Counter("result_cache_misses").Value()
}

// TestResultCacheServesRepeatsAndInvalidatesOnInsert: identical reads
// between inserts are served from cache; any window mutation
// invalidates.
func TestResultCacheServesRepeatsAndInvalidatesOnInsert(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	for i := 0; i < 5; i++ {
		c.Pulse()
	}
	const sql = `select count(*) as n from "avg-temp"`

	first, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, misses0 := cacheCounters(c)
	again, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := cacheCounters(c)
	if misses1 != misses0 || hits1 == 0 {
		t.Fatalf("repeat read not served from cache (hits=%d misses=%d→%d)", hits1, misses0, misses1)
	}
	if again.String() != first.String() {
		t.Fatalf("cached result diverged:\n%s\nvs\n%s", again, first)
	}

	c.Pulse() // insert → version bump → entry invalid
	after, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if after.String() == first.String() {
		t.Fatal("stale result served after insert")
	}
	if _, misses2 := cacheCounters(c); misses2 != misses1+1 {
		t.Fatalf("insert did not invalidate (misses %d → %d)", misses1, misses2)
	}
}

// TestResultCacheInvalidation drives the full mutation matrix — insert,
// window eviction, truncate, drop/recreate — and asserts the cached
// path stays byte-identical to a direct uncached execution at every
// step (the equivalence acceptance criterion).
func TestResultCacheInvalidation(t *testing.T) {
	c := testContainer(t)
	schema := stream.MustSchema(stream.Field{Name: "v", Type: stream.TypeInt})
	table := mustCreateTable(t, c, "t", 3)

	queries := []string{
		"select * from t",
		"select count(*) as n, sum(v) as s from t",
		"select v from t where v > 2 order by v desc",
		"select v, count(*) as n from t group by v",
		"select v % 2 as b, sum(v) as s from t group by v % 2 having count(*) > 0",
	}
	check := func(step string) {
		t.Helper()
		for _, sql := range queries {
			cached, err := c.Query(sql)
			if err != nil {
				t.Fatalf("%s: %q: %v", step, sql, err)
			}
			direct, err := sqlengine.ExecuteSQL(sql, c.Catalog(), sqlengine.Options{Clock: c.Clock()})
			if err != nil {
				t.Fatalf("%s: direct %q: %v", step, sql, err)
			}
			if cached.String() != direct.String() {
				t.Fatalf("%s: %q diverged:\ncached:\n%s\ndirect:\n%s", step, sql, cached, direct)
			}
		}
	}

	insert := func(v int64) {
		e, err := stream.NewElement(schema, stream.Timestamp(v), v)
		if err != nil {
			t.Fatal(err)
		}
		if err := table.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	check("empty")
	check("empty-repeat")
	for v := int64(1); v <= 3; v++ {
		insert(v)
		check(fmt.Sprintf("insert-%d", v))
	}
	insert(4) // count window 3: evicts v=1
	check("evict")
	check("evict-repeat")
	if err := table.Truncate(); err != nil {
		t.Fatal(err)
	}
	check("truncate")

	// Drop and recreate under the same name: the dependency pins table
	// identity, so a fresh (even version-0) table must not validate old
	// entries.
	insert(7)
	check("pre-drop")
	if err := c.Store().DropTable("t"); err != nil {
		t.Fatal(err)
	}
	table = mustCreateTable(t, c, "t", 3)
	e, err := stream.NewElement(schema, 50, int64(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Insert(e); err != nil {
		t.Fatal(err)
	}
	check("recreate")
}

func mustCreateTable(t *testing.T, c *Container, name string, count int) *storage.Table {
	t.Helper()
	schema := stream.MustSchema(stream.Field{Name: "v", Type: stream.TypeInt})
	table, err := c.Store().CreateTable(name, schema, storage.TableOptions{
		Window: stream.Window{Kind: stream.CountWindow, Count: count},
	})
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// TestResultCacheSkipsVolatile: NOW()-dependent statements are never
// cached (their results drift with the clock while windows stand
// still).
func TestResultCacheSkipsVolatile(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	c.Pulse()
	const sql = `select count(*) as n from "avg-temp" where timed >= now() - 60000`
	if _, err := c.Query(sql); err != nil {
		t.Fatal(err)
	}
	hits0, _ := cacheCounters(c)
	clock := c.Clock().(*stream.ManualClock)
	clock.Advance(120 * time.Second) // all rows age out of the predicate
	rel, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if hits1, _ := cacheCounters(c); hits1 != hits0 {
		t.Fatal("volatile statement served from cache")
	}
	if n := rel.Rows[0][0]; n != int64(0) {
		t.Errorf("aged-out count = %v, want 0", n)
	}

	// Volatility hides anywhere in a grouped statement too: a NOW() in
	// HAVING must bypass the cache the same way.
	const grouped = `select timed % 2 as b, count(*) as n from "avg-temp" ` +
		`group by timed % 2 having max(timed) >= now() - 60000`
	if _, err := c.Query(grouped); err != nil {
		t.Fatal(err)
	}
	hits0, _ = cacheCounters(c)
	if _, err := c.Query(grouped); err != nil {
		t.Fatal(err)
	}
	if hits1, _ := cacheCounters(c); hits1 != hits0 {
		t.Error("volatile grouped statement served from cache")
	}
}

// TestRegisterQueryCompilesAgainstOutputSchema pins the deploy-time
// compile contract at the container level.
func TestRegisterQueryCompilesAgainstOutputSchema(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	if _, err := c.RegisterQuery("avg-temp",
		"select nonexistent from \"avg-temp\"", 1, nil); err != nil {
		// Unknown columns surface at evaluation (seed semantics), not
		// registration — registration only parses.
		t.Fatalf("register: %v", err)
	}
	c.Pulse()
	stats := c.QueryRepositoryRef().Stats()
	if len(stats) != 1 || stats[0].Errors == 0 {
		t.Fatalf("bad-column query stats = %+v", stats)
	}
}
