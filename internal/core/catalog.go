package core

import (
	"fmt"

	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
)

// storeCatalog adapts the storage layer to the SQL engine: table names
// resolve to their current window contents with the implicit TIMED
// column appended. Each resolution scans the table once inside its
// eviction critical section (the zero-copy ForEach path), so a query
// sees one consistent instant per referenced table without an
// intermediate element-slice copy.
type storeCatalog struct {
	store *storage.Store
}

// Relation implements sqlengine.Catalog.
func (c storeCatalog) Relation(name string) (*sqlengine.Relation, error) {
	tab, ok := c.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown stream %q", name)
	}
	return sqlengine.RelationOfSource(tab), nil
}

// RelationRange implements sqlengine.RangeCatalog: a query whose WHERE
// clause pins TIMED to an interval is served by the table's tiered
// range scan — a B+tree index walk over the on-disk history merged
// with the hot window — instead of a full window materialisation. For
// tables without a history tier this degrades to a filtered hot scan.
func (c storeCatalog) RelationRange(name string, lo, hi int64) (*sqlengine.Relation, error) {
	tab, ok := c.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown stream %q", name)
	}
	elems, err := tab.TimedRange(stream.Timestamp(lo), stream.Timestamp(hi))
	if err != nil {
		return nil, err
	}
	return sqlengine.RelationOfElements(tab.Schema(), elems), nil
}

// Catalog exposes the container's stored streams (virtual sensor
// outputs and source windows) to ad-hoc queries.
func (c *Container) Catalog() sqlengine.Catalog {
	return storeCatalog{store: c.store}
}

// elementsFromRelation converts query result rows into stream elements
// of the given schema. Field values are taken by (unqualified) column
// name when every schema field resolves uniquely in the relation, and
// positionally otherwise — so both
//
//	select avg(temperature) as temperature from wrapper
//	select avg(temperature) from wrapper
//
// populate a single-field output structure. The element timestamp comes
// from an unambiguous TIMED column when present, else from now.
func elementsFromRelation(schema *stream.Schema, rel *sqlengine.Relation, now stream.Timestamp) ([]stream.Element, error) {
	idx := make([]int, schema.Len())
	nameBased := true
	for i, f := range schema.Fields() {
		j, err := rel.ColumnIndex("", f.Name)
		if err != nil {
			nameBased = false
			break
		}
		idx[i] = j
	}
	if !nameBased {
		if len(rel.Cols) < schema.Len() {
			return nil, fmt.Errorf("core: query produced %d columns for output structure %s",
				len(rel.Cols), schema)
		}
		for i := range idx {
			idx[i] = i
		}
	}
	timedIdx := -1
	if j, err := rel.ColumnIndex("", sqlengine.TimedColumn); err == nil {
		timedIdx = j
	}

	out := make([]stream.Element, 0, len(rel.Rows))
	for _, row := range rel.Rows {
		values := make([]stream.Value, schema.Len())
		for i, j := range idx {
			values[i] = row[j]
		}
		ts := now
		if timedIdx >= 0 {
			if t, ok := row[timedIdx].(int64); ok {
				ts = stream.Timestamp(t)
			}
		}
		e, err := stream.NewElement(schema, ts, values...)
		if err != nil {
			return nil, fmt.Errorf("core: output row does not fit structure %s: %w", schema, err)
		}
		out = append(out, e)
	}
	return out, nil
}
