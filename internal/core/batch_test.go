package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gsn/internal/stream"
)

// batchEquivDescriptor builds a sensor over a csv replay source with a
// quality chain (sampling + slide) so the batch path crosses every
// stage.
func batchEquivDescriptor(csvPath string) string {
	return fmt.Sprintf(`
<virtual-sensor name="beq">
  <output-structure>
    <field name="n" type="integer"/>
    <field name="a" type="double"/>
  </output-structure>
  <storage size="5"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="20" sampling-rate="0.8" slide="2">
      <address wrapper="csv">
        <predicate key="file" val=%q/>
        <predicate key="types" val="integer"/>
        <predicate key="seed" val="11"/>
      </address>
      <query>select count(*) as n, avg(v) as a from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, csvPath)
}

// TestBatchIngestEquivalence drives the same arrival sequence through
// the per-element ingress (Pulse) and the batch ingress (PulseBatch,
// arbitrary split) and asserts the observable state converges: source
// window contents, trigger counts and the final aggregate are
// identical. (Intermediate outputs may differ — a burst's triggers all
// see the full burst in the window, exactly as PR 1's coalescing
// already allows under load.)
func TestBatchIngestEquivalence(t *testing.T) {
	const rows = 60
	csvPath := filepath.Join(t.TempDir(), "r.csv")
	data := "v\n"
	for i := 1; i <= rows; i++ {
		data += fmt.Sprintf("%d\n", i)
	}
	if err := os.WriteFile(csvPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	newNode := func() *Container {
		c, err := New(Options{Clock: stream.NewManualClock(1000), SyncProcessing: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.DeployXML([]byte(batchEquivDescriptor(csvPath))); err != nil {
			t.Fatal(err)
		}
		return c
	}
	perElem := newNode()
	batched := newNode()

	// An arbitrary split of the 60 rows into bursts.
	splits := []int{1, 3, 7, 2, 12, 1, 9, 5, 20}
	total := 0
	for _, k := range splits {
		for i := 0; i < k; i++ {
			if n := perElem.Pulse(); n != 1 {
				t.Fatalf("Pulse injected %d", n)
			}
		}
		if n := batched.PulseBatch(k); n != k {
			t.Fatalf("PulseBatch(%d) injected %d", k, n)
		}
		total += k
	}
	if total != rows {
		t.Fatalf("split sums to %d, want %d", total, rows)
	}

	vsA := perElem.Sensors()[0]
	vsB := batched.Sensors()[0]

	// Identical source window contents (the sampler admitted the same
	// subset in the same order: same seed, same draw sequence).
	winA := vsA.streams[0].sources[0].table.Snapshot()
	winB := vsB.streams[0].sources[0].table.Snapshot()
	if len(winA) != len(winB) {
		t.Fatalf("window sizes diverged: %d vs %d", len(winA), len(winB))
	}
	for i := range winA {
		if winA[i].Value(0) != winB[i].Value(0) {
			t.Fatalf("window[%d] = %v vs %v", i, winA[i], winB[i])
		}
	}

	// Identical trigger counts: the batch terminal accounts one trigger
	// per slide boundary crossed, matching the per-element count. In
	// sync mode a burst's crossings collapse into one evaluation, so
	// the batched node reports the surplus as Coalesced and produces
	// correspondingly fewer (identical-content) outputs.
	stA, stB := vsA.Stats(), vsB.Stats()
	if stA.Triggers != stB.Triggers {
		t.Fatalf("trigger counts diverged: %d vs %d", stA.Triggers, stB.Triggers)
	}
	if stA.Triggers == 0 {
		t.Fatal("no triggers fired; the test exercised nothing")
	}
	if stA.Errors != 0 || stB.Errors != 0 {
		t.Fatalf("errors: per-element %d (%s), batched %d (%s)",
			stA.Errors, stA.LastError, stB.Errors, stB.LastError)
	}
	if stA.Coalesced != 0 {
		t.Fatalf("per-element sync path coalesced %d triggers", stA.Coalesced)
	}
	if stB.Outputs+stB.Coalesced != stA.Outputs {
		t.Fatalf("batched outputs %d + coalesced %d != per-element outputs %d",
			stB.Outputs, stB.Coalesced, stA.Outputs)
	}
	if stB.Coalesced == 0 {
		t.Fatal("multi-crossing bursts coalesced nothing; sync batching exercised nothing")
	}

	// Identical final aggregate: both windows hold the same elements,
	// so the last evaluation agrees.
	lastA, okA := vsA.Output().Latest()
	lastB, okB := vsB.Output().Latest()
	if !okA || !okB {
		t.Fatal("no output produced")
	}
	if lastA.Value(0) != lastB.Value(0) || lastA.Value(1) != lastB.Value(1) {
		t.Fatalf("final aggregates diverged: %v vs %v", lastA, lastB)
	}
}

// TestBatchIngestRateLimit: the shared stream-level rate limiter must
// clip a burst mid-batch exactly where it would clip the element
// stream.
func TestBatchIngestRateLimit(t *testing.T) {
	const rows = 30
	csvPath := filepath.Join(t.TempDir(), "r.csv")
	data := "v\n"
	for i := 1; i <= rows; i++ {
		data += fmt.Sprintf("%d\n", i)
	}
	if err := os.WriteFile(csvPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	desc := fmt.Sprintf(`
<virtual-sensor name="rl">
  <output-structure><field name="n" type="integer"/></output-structure>
  <storage size="5"/>
  <input-stream name="in" rate="5">
    <stream-source alias="s" storage-size="100">
      <address wrapper="csv">
        <predicate key="file" val=%q/>
        <predicate key="types" val="integer"/>
      </address>
      <query>select count(*) as n from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, csvPath)

	clock := stream.NewManualClock(1000)
	c, err := New(Options{Clock: clock, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeployXML([]byte(desc)); err != nil {
		t.Fatal(err)
	}
	// One burst of 30 against a 5/s bucket holding a single start-up
	// token plus nothing accrued: only the admitted prefix lands.
	c.PulseBatch(rows)
	vs := c.Sensors()[0]
	live := vs.streams[0].sources[0].table.Len()
	if live >= rows {
		t.Fatalf("rate limiter admitted the whole burst (%d)", live)
	}
	if live == 0 {
		t.Fatal("rate limiter rejected the whole burst; start-up token missing")
	}
}
