package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsn/internal/notify"
	"gsn/internal/sqlengine"
	"gsn/internal/stream"
	"gsn/internal/vsensor"
)

// tierDescriptor builds one tier of a local composition chain: name
// consumes upstream's output (value column) and re-emits it shifted by
// +1, so values record the number of tiers an element crossed.
func tierDescriptor(name, upstream string) string {
	return fmt.Sprintf(`
<virtual-sensor name="%s">
  <output-structure>
    <field name="value" type="integer"/>
  </output-structure>
  <storage size="100"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="local"><predicate key="sensor" val="%s"/></address>
      <query>select value + 1 as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, name, upstream)
}

// rootDescriptor is the physical tier: a timer wrapper driven by Pulse.
func rootDescriptor(name string) string {
	return fmt.Sprintf(`
<virtual-sensor name="%s">
  <output-structure>
    <field name="value" type="integer"/>
  </output-structure>
  <storage size="100"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="timer"/>
      <query>select tick as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, name)
}

func deployChain(t *testing.T, c *Container, names ...string) {
	t.Helper()
	deploy(t, c, rootDescriptor(names[0]))
	for i := 1; i < len(names); i++ {
		deploy(t, c, tierDescriptor(names[i], names[i-1]))
	}
}

// TestLocalCompositionThreeTiers: elements propagate through a
// three-tier local chain synchronously, each tier applying its own
// processing (value+1 per hop).
func TestLocalCompositionThreeTiers(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1", "t2")

	for i := 0; i < 5; i++ {
		if n := c.Pulse(); n != 1 { // only the root has a pull-capable wrapper
			t.Fatalf("Pulse injected %d", n)
		}
	}
	for tier, want := range map[string]int64{"t0": 5, "t1": 6, "t2": 7} {
		vs, ok := c.Sensor(tier)
		if !ok {
			t.Fatalf("%s not deployed", tier)
		}
		if st := vs.Stats(); st.Outputs != 5 || st.Errors != 0 {
			t.Fatalf("%s stats = %+v", tier, st)
		}
		e, ok := vs.Output().Latest()
		if !ok {
			t.Fatalf("%s has no output", tier)
		}
		if got := e.Value(0).(int64); got != want { // tick 5 crossed N tiers
			t.Errorf("%s latest = %d, want %d", tier, got, want)
		}
	}

	graph := c.Graph()
	if len(graph["T1"]) != 1 || graph["T1"][0] != "T0" || len(graph["T2"]) != 1 || graph["T2"][0] != "T1" {
		t.Errorf("graph = %v", graph)
	}
	if deps := c.Dependents("t0"); len(deps) != 1 || deps[0] != "T1" {
		t.Errorf("dependents(t0) = %v", deps)
	}
}

// TestLocalCompositionBatchPropagation: a burst injected at the root
// crosses downstream tiers through the batch path.
func TestLocalCompositionBatchPropagation(t *testing.T) {
	c := testContainer(t)
	root := strings.Replace(rootDescriptor("t0"),
		`<address wrapper="timer"/>`,
		`<address wrapper="mote"><predicate key="sensors" val="temperature"/></address>`, 1)
	root = strings.Replace(root, "select tick as value", "select temperature as value", 1)
	deploy(t, c, root)
	deploy(t, c, tierDescriptor("t1", "t0"))

	if n := c.PulseBatch(16); n != 16 {
		t.Fatalf("PulseBatch injected %d", n)
	}
	vs, _ := c.Sensor("t1")
	if st := vs.Stats(); st.Outputs == 0 || st.Errors != 0 {
		t.Fatalf("t1 stats after burst = %+v", st)
	}
	if live := vs.Output().Len(); live == 0 {
		t.Error("t1 received nothing from the burst")
	}
}

// TestDeployRejectsDanglingDependency: a local source naming an
// undeployed sensor is rejected at deploy time.
func TestDeployRejectsDanglingDependency(t *testing.T) {
	c := testContainer(t)
	err := c.DeployXML([]byte(tierDescriptor("t1", "ghost")))
	if err == nil || !strings.Contains(err.Error(), "not deployed") {
		t.Fatalf("dangling dependency error = %v", err)
	}
	if got := c.Store().List(); len(got) != 0 {
		t.Errorf("tables leaked: %v", got)
	}
}

// TestDeployAllTopologicalOrder: a batch handed over downstream-first
// still deploys, and an in-batch cycle is rejected with a clear error.
func TestDeployAllTopologicalOrder(t *testing.T) {
	c := testContainer(t)
	parse := func(xml string) *vsensor.Descriptor {
		d, err := vsensor.Parse([]byte(xml))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	deployed, err := c.DeployAll([]*vsensor.Descriptor{
		parse(tierDescriptor("t2", "t1")),
		parse(tierDescriptor("t1", "t0")),
		parse(rootDescriptor("t0")),
	})
	if err != nil {
		t.Fatalf("DeployAll: %v", err)
	}
	if len(deployed) != 3 || deployed[0] != "t0" || deployed[1] != "t1" || deployed[2] != "t2" {
		t.Fatalf("deploy order = %v", deployed)
	}
	if c.Pulse() != 1 {
		t.Fatal("chain not wired")
	}
	if vs, _ := c.Sensor("t2"); vs.Stats().Outputs != 1 {
		t.Error("t2 produced nothing")
	}

	// A cyclic batch must fail before deploying anything.
	c2 := testContainer(t)
	_, err = c2.DeployAll([]*vsensor.Descriptor{
		parse(tierDescriptor("a", "b")),
		parse(tierDescriptor("b", "a")),
	})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle error = %v", err)
	}
	if len(c2.Sensors()) != 0 {
		t.Error("cyclic batch partially deployed")
	}
}

// TestUndeployRefusesAndCascades: an upstream with dependents refuses
// plain Undeploy; UndeployCascade removes the whole subtree leaf-first
// and counts the cascaded removals.
func TestUndeployRefusesAndCascades(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1", "t2")

	if err := c.Undeploy("t0"); err == nil || !strings.Contains(err.Error(), "dependents") {
		t.Fatalf("undeploy with dependents = %v", err)
	}
	if _, ok := c.Sensor("t0"); !ok {
		t.Fatal("refused undeploy still removed the sensor")
	}

	removed, err := c.UndeployCascade("t0")
	if err != nil {
		t.Fatalf("UndeployCascade: %v", err)
	}
	if len(removed) != 3 || removed[0] != "T2" || removed[1] != "T1" || removed[2] != "T0" {
		t.Fatalf("cascade order = %v", removed)
	}
	if got := len(c.Sensors()); got != 0 {
		t.Errorf("%d sensors remain", got)
	}
	if got := c.Metrics().Counter("cascade_undeploys").Value(); got != 2 {
		t.Errorf("cascade_undeploys = %d, want 2", got)
	}
	if got := c.Store().List(); len(got) != 0 {
		t.Errorf("tables remain: %v", got)
	}
}

// TestRedeployPreservesState is the tentpole acceptance scenario:
// redeploying the middle tier of a chain with an unchanged output
// schema preserves its output rows, keeps every registered client
// query and subscription delivering, and downstream tiers keep
// receiving — zero unregistrations.
func TestRedeployPreservesState(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1", "t2")

	var evals atomic.Int64
	qid, err := c.RegisterQuery("t1", "select count(*) as n from T1", 1,
		func(*sqlengine.Relation) { evals.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	var notified atomic.Int64
	sid, err := c.Subscribe("t1", notify.FuncChannel{ChannelName: "test",
		Fn: func(notify.Event) error { notified.Add(1); return nil }})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		c.Pulse()
	}
	if !c.Notifier().Flush(time.Second) {
		t.Fatal("notifications did not drain")
	}
	rowsBefore := mustSensor(t, c, "t1").Output().Len()
	evalsBefore, notifiedBefore := evals.Load(), notified.Load()
	if rowsBefore != 4 || evalsBefore == 0 || notifiedBefore == 0 {
		t.Fatalf("setup: rows=%d evals=%d notified=%d", rowsBefore, evalsBefore, notifiedBefore)
	}

	// Same output schema, different processing: +10 per hop instead of +1.
	changed := strings.Replace(tierDescriptor("t1", "t0"),
		"value + 1 as value", "value + 10 as value", 1)
	desc, err := vsensor.Parse([]byte(changed))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err != nil {
		t.Fatalf("Redeploy: %v", err)
	}

	// Output rows survived the swap.
	if got := mustSensor(t, c, "t1").Output().Len(); got != rowsBefore {
		t.Errorf("t1 rows after swap = %d, want %d (state lost)", got, rowsBefore)
	}
	if got := c.QueryRepositoryRef().Count(); got != 1 {
		t.Fatalf("registered queries after swap = %d, want 1 (unregistered by redeploy)", got)
	}

	c.Pulse() // tick 5 through the new t1 processing
	if !c.Notifier().Flush(time.Second) {
		t.Fatal("notifications did not drain")
	}
	if got := evals.Load(); got <= evalsBefore {
		t.Error("registered query stopped evaluating after the swap")
	}
	if got := notified.Load(); got <= notifiedBefore {
		t.Error("notification subscription stopped after the swap")
	}
	e, ok := mustSensor(t, c, "t1").Output().Latest()
	if !ok || e.Value(0).(int64) != 15 { // 5 + 10
		t.Errorf("t1 latest after swap = %v, want 15", e.Value(0))
	}
	e, ok = mustSensor(t, c, "t2").Output().Latest()
	if !ok || e.Value(0).(int64) != 16 { // downstream kept its edge
		t.Errorf("t2 latest after swap = %v, want 16", e.Value(0))
	}
	if got := mustSensor(t, c, "t2").Output().Len(); got != 5 {
		t.Errorf("t2 rows = %d, want 5 (downstream missed the post-swap element)", got)
	}
	if got := c.Metrics().Counter("redeploys_preserved").Value(); got != 1 {
		t.Errorf("redeploys_preserved = %d", got)
	}
	if err := c.UnregisterQuery(qid); err != nil {
		t.Errorf("query id invalidated by swap: %v", err)
	}
	if err := c.Unsubscribe(sid); err != nil {
		t.Errorf("subscription id invalidated by swap: %v", err)
	}
}

// TestRedeployPreservesWAL: a permanent sensor's on-disk log keeps
// accumulating across a preserved redeploy (same table, same WAL).
func TestRedeployPreservesWAL(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{
		Name:           "wal-node",
		Clock:          stream.NewManualClock(1_000_000),
		SyncProcessing: true,
		DataDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	perm := strings.Replace(rootDescriptor("t0"), `<storage size="100"/>`,
		`<storage size="100" permanent-storage="true"/>`, 1)
	deploy(t, c, perm)
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	desc, err := vsensor.Parse([]byte(perm))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err != nil {
		t.Fatalf("Redeploy: %v", err)
	}
	for i := 0; i < 2; i++ {
		c.Pulse()
	}
	if got := mustSensor(t, c, "t0").Output().Len(); got != 5 {
		t.Fatalf("rows after preserved redeploy = %d, want 5", got)
	}
	// A fresh container must replay all five rows from the preserved WAL.
	c.Close()
	c2, err := New(Options{Name: "wal-node-2", Clock: stream.NewManualClock(2_000_000),
		SyncProcessing: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deploy(t, c2, perm)
	if got := mustSensor(t, c2, "t0").Output().Len(); got != 5 {
		t.Errorf("rows replayed after restart = %d, want 5 (WAL lost in redeploy)", got)
	}
}

// TestRedeployFailureKeepsOldServing is the satellite regression test:
// a replacement descriptor that cannot deploy (unknown wrapper) leaves
// the old sensor running and serving — not gone, as the old
// undeploy+deploy implementation did.
func TestRedeployFailureKeepsOldServing(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1")
	c.Pulse()

	bad := strings.Replace(rootDescriptor("t0"), `wrapper="timer"`, `wrapper="warp-drive"`, 1)
	desc, err := vsensor.Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("redeploy with unknown wrapper = %v", err)
	}
	vs, ok := c.Sensor("t0")
	if !ok {
		t.Fatal("old sensor gone after failed redeploy")
	}
	before := vs.Stats().Outputs
	c.Pulse()
	if got := mustSensor(t, c, "t0").Stats().Outputs; got != before+1 {
		t.Errorf("old sensor not serving after failed redeploy: outputs %d → %d", before, got)
	}
	if got := mustSensor(t, c, "t1").Stats().Outputs; got == 0 {
		t.Error("downstream lost its feed after failed redeploy")
	}
}

// TestRedeploySchemaChangeRefusedWithDependents: changing an output
// schema out from under downstream local windows is rejected.
func TestRedeploySchemaChangeRefusedWithDependents(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1")

	changed := strings.Replace(rootDescriptor("t0"),
		`<field name="value" type="integer"/>`,
		`<field name="value" type="double"/>`, 1)
	desc, err := vsensor.Parse([]byte(changed))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err == nil || !strings.Contains(err.Error(), "consume it") {
		t.Fatalf("schema change with dependents = %v", err)
	}
	if _, ok := c.Sensor("t0"); !ok {
		t.Fatal("refused redeploy removed the sensor")
	}
}

// TestRedeployCycleRejected: a swap may not close a dependency cycle.
func TestRedeployCycleRejected(t *testing.T) {
	c := testContainer(t)
	deployChain(t, c, "t0", "t1")

	// t0 must not become a consumer of t1 (t1 already consumes t0).
	cyclic := tierDescriptor("t0", "t1")
	desc, err := vsensor.Parse([]byte(cyclic))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle-closing redeploy = %v", err)
	}
	c.Pulse()
	if got := mustSensor(t, c, "t1").Stats().Outputs; got != 1 {
		t.Errorf("chain broken by refused redeploy: t1 outputs = %d", got)
	}
}

// TestLocalSelfDependencyRejected: validation refuses a sensor whose
// local source names itself.
func TestLocalSelfDependencyRejected(t *testing.T) {
	_, err := vsensor.Parse([]byte(tierDescriptor("self", "self")))
	if err == nil || !strings.Contains(err.Error(), "own sensor") {
		t.Fatalf("self-dependency = %v", err)
	}
}

// TestConcurrentLifecycleRace exercises Deploy/Redeploy/UndeployCascade
// racing Pulse, ad-hoc queries and registered-query sweeps under the
// race detector, including tearing down and rebuilding the middle tier
// of a three-sensor chain while elements flow.
func TestConcurrentLifecycleRace(t *testing.T) {
	c, err := New(Options{Name: "race-node"}) // async: worker pools + supervision live
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deployChain(t, c, "t0", "t1", "t2")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	run := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	run(func() { c.Pulse() })
	run(func() { c.PulseBatch(8) })
	run(func() { c.Query(`select count(*) from "t0"`) })
	rng := rand.New(rand.NewSource(42))
	var rngMu sync.Mutex
	run(func() {
		rngMu.Lock()
		sensor := []string{"t0", "t1", "t2"}[rng.Intn(3)]
		rngMu.Unlock()
		if id, err := c.RegisterQuery(sensor, "select count(*) as n from "+strings.ToUpper(sensor), 1, nil); err == nil {
			time.Sleep(time.Millisecond)
			c.UnregisterQuery(id)
		}
	})

	mid, err := vsensor.Parse([]byte(tierDescriptor("t1", "t0")))
	if err != nil {
		t.Fatal(err)
	}
	tail, err := vsensor.Parse([]byte(tierDescriptor("t2", "t1")))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := c.Redeploy(mid); err != nil {
			t.Fatalf("iteration %d: redeploy mid: %v", i, err)
		}
		if i%5 == 4 {
			// Tear down the middle of the chain (cascades through t2),
			// then rebuild both tiers.
			if _, err := c.UndeployCascade("t1"); err != nil {
				t.Fatalf("iteration %d: cascade: %v", i, err)
			}
			if err := c.Deploy(mid); err != nil {
				t.Fatalf("iteration %d: rebuild t1: %v", i, err)
			}
			if err := c.Deploy(tail); err != nil {
				t.Fatalf("iteration %d: rebuild t2: %v", i, err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if _, ok := c.Sensor("t2"); !ok {
		t.Fatal("chain incomplete after churn")
	}
}

func mustSensor(t *testing.T, c *Container, name string) *VirtualSensor {
	t.Helper()
	vs, ok := c.Sensor(name)
	if !ok {
		t.Fatalf("sensor %s not deployed", name)
	}
	return vs
}
