package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gsn/internal/stream"
	"gsn/internal/vsensor"
	"gsn/internal/wrappers"
)

// flakyWrapper fails Produce a configurable number of times and then
// recovers; it also counts Start/Stop calls so supervision behaviour is
// observable.
type flakyWrapper struct {
	schema *stream.Schema
	clock  stream.Clock

	mu       sync.Mutex
	failures int
	starts   int
	stops    int
	produced int
}

func (f *flakyWrapper) Kind() string           { return "flaky" }
func (f *flakyWrapper) Schema() *stream.Schema { return f.schema }

func (f *flakyWrapper) Start(emit wrappers.EmitFunc) error {
	f.mu.Lock()
	f.starts++
	f.mu.Unlock()
	return nil
}

func (f *flakyWrapper) Stop() error {
	f.mu.Lock()
	f.stops++
	f.mu.Unlock()
	return nil
}

func (f *flakyWrapper) Produce() (stream.Element, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return stream.Element{}, fmt.Errorf("flaky: device read failed")
	}
	f.produced++
	return stream.NewElement(f.schema, f.clock.Now(), int64(f.produced))
}

func registryWithFlaky(t *testing.T, clock stream.Clock, failures int) (*wrappers.Registry, *flakyWrapper) {
	t.Helper()
	schema := stream.MustSchema(stream.Field{Name: "v", Type: stream.TypeInt})
	fw := &flakyWrapper{schema: schema, clock: clock, failures: failures}
	reg := wrappers.Default().Clone()
	if err := reg.Register("flaky", func(wrappers.Config) (wrappers.Wrapper, error) {
		return fw, nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg, fw
}

const flakyDescriptor = `
<virtual-sensor name="fragile">
  <output-structure><field name="v" type="integer"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="flaky"/>
      <query>select v from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`

func TestWrapperReadFailuresAreCountedNotFatal(t *testing.T) {
	clock := stream.NewManualClock(0)
	reg, fw := registryWithFlaky(t, clock, 3)
	c, err := New(Options{Clock: clock, Registry: reg, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeployXML([]byte(flakyDescriptor)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("fragile")
	st := vs.Stats()
	if st.Errors != 3 {
		t.Errorf("errors = %d, want 3 recorded read failures", st.Errors)
	}
	if st.Outputs != 3 {
		t.Errorf("outputs = %d, want 3 after recovery", st.Outputs)
	}
	if !strings.Contains(st.LastError, "device read failed") {
		t.Errorf("last error = %q", st.LastError)
	}
	_ = fw
}

func TestRuntimeQueryErrorDoesNotKillSensor(t *testing.T) {
	// sum(tag) over a varchar column parses fine but fails at runtime
	// once data arrives; the life-cycle manager must record the error
	// and keep the sensor alive.
	c := testContainer(t)
	err := c.DeployXML([]byte(`
<virtual-sensor name="bad-agg">
  <output-structure><field name="x" type="double"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="5">
      <address wrapper="rfid">
        <predicate key="presence" val="1"/>
        <predicate key="seed" val="2"/>
      </address>
      <query>select sum(tag_id) as x from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("bad-agg")
	st := vs.Stats()
	if st.Errors == 0 {
		t.Fatal("runtime aggregate error not recorded")
	}
	if st.Outputs != 0 {
		t.Errorf("outputs = %d for failing query", st.Outputs)
	}
	// The container itself is healthy: deploy something else.
	if err := c.DeployXML([]byte(moteAvgDescriptor)); err != nil {
		t.Fatal(err)
	}
}

func TestGapDetectionAndWrapperRestart(t *testing.T) {
	// Async container with a gap-timeout on the source: once the
	// wrapper goes silent, the supervision loop must restart it.
	reg, fw := registryWithFlaky(t, stream.SystemClock(), 0)
	c, err := New(Options{
		Registry:          reg,
		SuperviseInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.DeployXML([]byte(strings.Replace(flakyDescriptor,
		`<address wrapper="flaky"/>`,
		`<address wrapper="flaky"><predicate key="gap-timeout" val="50"/></address>`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Never pulse: the source stays silent past the 50ms gap-timeout.
	deadline := time.Now().Add(3 * time.Second)
	for {
		fw.mu.Lock()
		restarted := fw.starts >= 2 && fw.stops >= 1
		fw.mu.Unlock()
		if restarted {
			break
		}
		if time.Now().After(deadline) {
			fw.mu.Lock()
			t.Fatalf("wrapper not restarted: starts=%d stops=%d", fw.starts, fw.stops)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Metrics().Counter("wrapper_restarts").Value() == 0 {
		t.Error("restart metric not incremented")
	}
}

func TestPermanentStorageViaDescriptor(t *testing.T) {
	dir := t.TempDir()
	clock := stream.NewManualClock(1_000_000)
	persistent := strings.Replace(moteAvgDescriptor, `<storage size="50" />`,
		`<storage permanent-storage="true" size="50"/>`, 1)

	c1, err := New(Options{Clock: clock, DataDir: dir, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.DeployXML([]byte(persistent)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c1.Pulse()
	}
	c1.Close()

	// A new container over the same data dir replays the output log.
	c2, err := New(Options{Clock: clock, DataDir: dir, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.DeployXML([]byte(persistent)); err != nil {
		t.Fatal(err)
	}
	rel, err := c2.Query(`select count(*) from "avg-temp"`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(4) {
		t.Errorf("replayed rows = %v, want 4", rel.Rows[0][0])
	}
	// The log file is on disk under the canonical sensor name.
	if _, err := os.Stat(filepath.Join(dir, "AVG-TEMP.gsnlog")); err != nil {
		t.Errorf("log file missing: %v", err)
	}
}

func TestFileNotificationViaDescriptor(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "events.jsonl")
	withNotify := strings.Replace(moteAvgDescriptor, `<storage size="50" />`,
		fmt.Sprintf(`<storage size="50"/><notification channel="file" target=%q/>`, target), 1)
	c := testContainer(t)
	if err := c.DeployXML([]byte(withNotify)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	if !c.Notifier().Flush(2 * time.Second) {
		t.Fatal("notifications did not drain")
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Errorf("notification file has %d lines, want 3", len(lines))
	}
}

func TestDisconnectBufferIntegration(t *testing.T) {
	// Directly exercise the per-source buffer through the sensor's
	// runtime: disconnect, feed, reconnect, and confirm ordered replay
	// into the window.
	c := testContainer(t)
	buffered := strings.Replace(moteAvgDescriptor, `storage-size="10"`,
		`storage-size="10" disconnect-buffer="5"`, 1)
	if err := c.DeployXML([]byte(buffered)); err != nil {
		t.Fatal(err)
	}
	vs, _ := c.Sensor("avg-temp")
	src := vs.streams[0].sources[0]

	src.buffer.SetConnected(false)
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	if got := vs.Stats().Sources[0].WindowLive; got != 0 {
		t.Fatalf("window received %d elements while disconnected", got)
	}
	if src.buffer.Buffered() != 3 {
		t.Fatalf("buffered = %d", src.buffer.Buffered())
	}
	src.buffer.SetConnected(true)
	if got := vs.Stats().Sources[0].WindowLive; got != 3 {
		t.Fatalf("window has %d after reconnect, want 3", got)
	}
	if vs.Stats().Triggers != 3 {
		t.Errorf("triggers = %d", vs.Stats().Triggers)
	}
}

func TestHoldLastRepairViaDescriptor(t *testing.T) {
	// A mote with 100% failure produces nothing; instead use the csv
	// wrapper with missing cells and the repair=hold-last predicate.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csvPath, []byte("v\n10\n\n30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := testContainer(t)
	err := c.DeployXML([]byte(fmt.Sprintf(`
<virtual-sensor name="repaired">
  <output-structure><field name="v" type="integer"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="10">
      <address wrapper="csv">
        <predicate key="file" val=%q/>
        <predicate key="types" val="integer"/>
        <predicate key="repair" val="hold-last"/>
      </address>
      <query>select v from WRAPPER order by timed</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, csvPath)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	rel, err := c.Query("select v from repaired order by timed")
	if err != nil {
		t.Fatal(err)
	}
	// Middle NULL row must have been repaired to the held value 10.
	for _, row := range rel.Rows {
		if row[0] == nil {
			t.Errorf("NULL survived hold-last repair: %v", rel.Rows)
		}
	}
}

func TestDescriptorRoundTripThroughRedeploy(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	vs, _ := c.Sensor("avg-temp")
	// Export the running descriptor, re-parse it, redeploy it.
	data, err := vs.Descriptor().XML()
	if err != nil {
		t.Fatal(err)
	}
	desc, err := vsensor.Parse(data)
	if err != nil {
		t.Fatalf("exported descriptor does not re-parse: %v", err)
	}
	if err := c.Redeploy(desc); err != nil {
		t.Fatalf("redeploy of exported descriptor: %v", err)
	}
	c.Pulse()
	if st, _ := c.Sensor("avg-temp"); st.Stats().Outputs != 1 {
		t.Errorf("redeployed sensor stats = %+v", st.Stats())
	}
}

func TestTriggerOverflowSheds(t *testing.T) {
	// An async container with pool-size 1 and a blocking-slow query
	// cannot drain fast pulses; overload must shed triggers, not grow
	// without bound.
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.DeployXML([]byte(`
<virtual-sensor name="slow">
  <life-cycle pool-size="1"/>
  <output-structure><field name="n" type="integer"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="400">
      <address wrapper="random-walk"><predicate key="seed" val="1"/></address>
      <query>select count(*) as n from WRAPPER a, WRAPPER b where a.value >= b.value</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`))
	if err != nil {
		t.Fatal(err)
	}
	// Push far more triggers than a single worker can process: the
	// quadratic self-join over the window slows each trigger to tens of
	// milliseconds.
	for i := 0; i < 2000; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("slow")
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := vs.Stats()
		if st.Errors > 0 {
			t.Fatalf("overload produced errors: %+v", st)
		}
		if st.Outputs+st.Dropped+st.Coalesced >= 2000 {
			if st.Dropped == 0 && st.Coalesced == 0 {
				t.Skip("machine fast enough to drain; overload not reproducible here")
			}
			return // coalesced/shed some load and finished the rest: correct
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool wedged: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSlideTriggersEveryNth(t *testing.T) {
	c := testContainer(t)
	slid := strings.Replace(moteAvgDescriptor, `storage-size="10"`,
		`storage-size="10" slide="3"`, 1)
	deploy(t, c, slid)
	for i := 0; i < 9; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	st := vs.Stats()
	if st.Triggers != 3 {
		t.Errorf("triggers = %d with slide=3 over 9 arrivals, want 3", st.Triggers)
	}
	// The window still advanced on every arrival.
	if st.Sources[0].Inserted != 9 {
		t.Errorf("window inserts = %d, want 9", st.Sources[0].Inserted)
	}
}

func TestSlideValidation(t *testing.T) {
	bad := strings.Replace(moteAvgDescriptor, `storage-size="10"`,
		`storage-size="10" slide="-2"`, 1)
	c := testContainer(t)
	if err := c.DeployXML([]byte(bad)); err == nil {
		t.Error("negative slide accepted")
	}
}
