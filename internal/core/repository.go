package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsn/internal/metrics"
	"gsn/internal/sqlengine"
	"gsn/internal/sqlparser"
	"gsn/internal/storage"
	"gsn/internal/stream"
)

// ClientQuery is one registered continuous query (a subscription in the
// paper's query repository, §4). Queries with identical SQL against the
// same sensor share one evaluation group: the group evaluates once per
// trigger and the relation fans out to every subscriber's callback.
type ClientQuery struct {
	ID int64
	// Sensor is the watched virtual sensor (canonical name).
	Sensor string
	// SQL is the query text.
	SQL string
	// SamplingRate in (0,1] evaluates the query on that fraction of
	// triggers.
	SamplingRate float64

	cb    func(*sqlengine.Relation)
	group *queryGroup

	// Sampling and counters are lock-free: a sweep touching thousands
	// of registered queries must not serialise on per-query mutexes
	// (the seed held a mutex around an rand.Rand per evaluation).
	seed        uint64
	draws       atomic.Uint64 // sampling decisions taken
	evaluations atomic.Uint64
	errors      atomic.Uint64
	lastLatency atomic.Int64 // nanoseconds
}

// sample decides lock-free whether this trigger evaluates the query: a
// counter-indexed splitmix64 stream, deterministic per query.
func (q *ClientQuery) sample() bool {
	if q.SamplingRate >= 1 {
		return true
	}
	n := q.draws.Add(1)
	return unitFloat(splitmix64(q.seed+n)) < q.SamplingRate
}

// splitmix64 is the standard 64-bit finalizing mixer (public domain,
// Vigna); one multiply-shift chain per draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps 64 random bits onto [0,1).
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// ClientQueryStats reports one registered query's counters.
type ClientQueryStats struct {
	ID           int64
	Sensor       string
	SQL          string
	Evaluations  uint64
	Errors       uint64
	LastLatency  time.Duration
	SamplingRate float64
}

// queryGroup is one distinct SQL text registered against a sensor: the
// unit of evaluation. All subscribers of the group receive the same
// *Relation (callbacks must treat it as read-only, which the seed's
// per-query path already required of concurrently sampled queries).
type queryGroup struct {
	sql    string
	sensor string
	stmt   *sqlparser.SelectStatement

	// plan is the statement compiled against the sensor's output
	// schema at Register time; nil when the shape needs the full
	// engine (joins, subqueries, other tables).
	plan *sqlengine.Plan
	// agg incrementally maintains an aggregate-only plan — ungrouped
	// (AggMaintainer) or grouped (GroupedAggMaintainer) — via the
	// output table's observer hook; nil unless the shape and the
	// window qualify.
	agg incMaintainer

	subs map[int64]*ClientQuery
}

// incMaintainer is the common surface of the incremental serving tier:
// a table observer whose Result materialises the maintained relation
// in O(output), or nil when poisoned. *sqlengine.AggMaintainer and
// *sqlengine.GroupedAggMaintainer implement it.
type incMaintainer interface {
	storage.Observer
	Result() *sqlengine.Relation
	NeedsResync() bool
}

// newIncMaintainer builds the incremental maintainer matching the
// plan's shape — ungrouped or grouped aggregate-only — or nil. Only
// count windows qualify: time-window eviction is clock-driven and the
// observer hooks fire on access, so the maintained state could lag the
// queried instant. schema is the window table's element schema.
func newIncMaintainer(plan *sqlengine.Plan, window stream.Window, schema *stream.Schema) incMaintainer {
	if window.Kind != stream.CountWindow {
		return nil
	}
	if inc := plan.Incremental(); inc != nil {
		return sqlengine.NewAggMaintainer(inc)
	}
	if ginc := plan.IncrementalGrouped(); ginc != nil && !groupedKeysApproximate(ginc, schema) {
		return sqlengine.NewGroupedAggMaintainer(ginc)
	}
	return nil
}

// groupedKeysApproximate reports whether any group key is a float
// column. Distinct float representations can compare equal (-0.0 vs
// +0.0), and the maintainer projects the key values captured at group
// creation while a window scan projects the oldest live row's — so a
// float-keyed rollup could diverge byte-wise after eviction. Such
// shapes stay on the compiled tier, which rescans. (The implicit TIMED
// key, index == schema length, is an int.)
func groupedKeysApproximate(prog *sqlengine.GroupedIncProgram, schema *stream.Schema) bool {
	fields := schema.Fields()
	for _, col := range prog.Keys {
		if col < len(fields) && fields[col].Type == stream.TypeFloat {
			return true
		}
	}
	return false
}

// sensorQueries indexes the groups watching one sensor.
type sensorQueries struct {
	out    *storage.Table // output table; nil when registered without one
	groups map[string]*queryGroup

	// sweepPending coalesces scheduled sweeps: while a sweep is queued
	// but has not started reading windows, further triggers collapse
	// into it (mirroring the trigger pipeline's coalescing).
	sweepPending atomic.Bool
}

// fanoutObserver dispatches table lifecycle events to the aggregate
// maintainers of every qualifying group on a sensor. The observer list
// is immutable after construction — membership changes install a fresh
// fanout via SetObserver, which replays the live window so every
// maintainer restarts consistent.
type fanoutObserver struct{ obs []storage.Observer }

func (f *fanoutObserver) OnInsert(e stream.Element) {
	for _, o := range f.obs {
		o.OnInsert(e)
	}
}

func (f *fanoutObserver) OnEvict(e stream.Element) {
	for _, o := range f.obs {
		o.OnEvict(e)
	}
}

func (f *fanoutObserver) OnTruncate() {
	for _, o := range f.obs {
		o.OnTruncate()
	}
}

// QueryRepository manages registered client queries — GSN's query
// repository, which "defines and maintains the set of currently active
// queries for the query processor". Identical SQL registered by many
// clients dedupes into one evaluation group; a trigger sweep
// materialises the sensor's output window once, evaluates independent
// groups on a bounded worker pool and fans each result out to the
// group's subscribers.
type QueryRepository struct {
	mu       sync.RWMutex
	nextID   int64
	queries  map[int64]*ClientQuery
	bySensor map[string]*sensorQueries

	metrics *metrics.Registry

	// Hot-path instruments, resolved once (a sweep touches them per
	// group; going through the registry would take its mutex each time).
	sweepTime     *metrics.Histogram
	coalesced     *metrics.Counter
	tierIncrement *metrics.Counter
	tierCompiled  *metrics.Counter
	tierGeneral   *metrics.Counter

	poolOnce sync.Once
	tasks    chan func()
	// poolMu serialises channel shutdown against submit's send, so a
	// sweep racing Close can never hit a closed channel.
	poolMu sync.RWMutex
	closed bool
}

// NewQueryRepository creates an empty repository. reg may be nil (a
// private registry is used); the container passes its own so sweep
// latency and coalescing counters surface in /api/metrics.
func NewQueryRepository(reg *metrics.Registry) *QueryRepository {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &QueryRepository{
		queries:       make(map[int64]*ClientQuery),
		bySensor:      make(map[string]*sensorQueries),
		metrics:       reg,
		sweepTime:     reg.Histogram("client_query_time"),
		coalesced:     reg.Counter("queries_coalesced"),
		tierIncrement: reg.Counter("client_query_incremental"),
		tierCompiled:  reg.Counter("client_query_compiled"),
		tierGeneral:   reg.Counter("client_query_general"),
	}
}

// maxSweepWorkers bounds the shared evaluation pool.
const maxSweepWorkers = 16

// startPool lazily launches the bounded worker pool shared by all
// sweeps (group evaluations and scheduled sweeps run on it).
func (r *QueryRepository) startPool() {
	n := runtime.GOMAXPROCS(0)
	if n > maxSweepWorkers {
		n = maxSweepWorkers
	}
	r.tasks = make(chan func(), n*4)
	for i := 0; i < n; i++ {
		go func() {
			for fn := range r.tasks {
				fn()
			}
		}()
	}
}

// submit hands fn to the pool, reporting false when the pool is
// saturated or closed (the caller runs it inline).
func (r *QueryRepository) submit(fn func()) bool {
	r.poolOnce.Do(r.startPool)
	r.poolMu.RLock()
	defer r.poolMu.RUnlock()
	if r.closed {
		return false
	}
	select {
	case r.tasks <- fn:
		return true
	default:
		return false
	}
}

// Close stops the worker pool. Scheduled sweeps already queued finish;
// later submissions run inline on the caller.
func (r *QueryRepository) Close() {
	// Start-then-close keeps the once state consistent even if no
	// sweep ever ran.
	r.poolOnce.Do(r.startPool)
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if !r.closed {
		r.closed = true
		close(r.tasks)
	}
}

// Register validates and adds a continuous query bound to a sensor.
// sampling of 0 means 1 (always). The callback may be nil (evaluate and
// discard — the Figure 4 load shape). out is the sensor's output table;
// when non-nil the statement is compiled against its schema so the
// per-trigger path pays no planning, and aggregate-only shapes over a
// count window are maintained incrementally. Callbacks of different
// groups may run concurrently; a group's subscribers are invoked
// sequentially and share the result relation read-only.
func (r *QueryRepository) Register(sensor, sql string, sampling float64,
	cb func(*sqlengine.Relation), out *storage.Table) (int64, error) {
	if sampling < 0 || sampling > 1 {
		return 0, fmt.Errorf("core: sampling rate %v outside [0,1]", sampling)
	}
	if sampling == 0 {
		sampling = 1
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, fmt.Errorf("core: client query: %w", err)
	}
	canonical := stream.CanonicalName(sensor)
	if canonical == "" {
		return 0, fmt.Errorf("core: client query needs a sensor")
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	sq := r.bySensor[canonical]
	if sq == nil {
		sq = &sensorQueries{groups: make(map[string]*queryGroup)}
		r.bySensor[canonical] = sq
	}
	if sq.out == nil {
		sq.out = out
	}

	g := sq.groups[sql]
	if g == nil {
		g = &queryGroup{
			sql:    sql,
			sensor: canonical,
			stmt:   stmt,
			subs:   make(map[int64]*ClientQuery),
		}
		if sq.out != nil {
			if plan, err := sqlengine.Compile(stmt,
				sqlengine.ColumnsOfSchema(sq.out.Schema()), canonical); err == nil {
				g.plan = plan
				g.agg = newIncMaintainer(plan, sq.out.Window(), sq.out.Schema())
			}
		}
		sq.groups[sql] = g
		if g.agg != nil {
			r.resetObserverLocked(sq)
		}
	}

	r.nextID++
	q := &ClientQuery{
		ID:           r.nextID,
		Sensor:       canonical,
		SQL:          sql,
		SamplingRate: sampling,
		cb:           cb,
		group:        g,
		seed:         splitmix64(uint64(r.nextID) * 2654435761),
	}
	g.subs[q.ID] = q
	r.queries[q.ID] = q
	return q.ID, nil
}

// resetObserverLocked reinstalls the output table's fanout observer
// from the sensor's current aggregate-maintained groups. SetObserver
// replays the live window, so every maintainer restarts consistent
// with it.
func (r *QueryRepository) resetObserverLocked(sq *sensorQueries) {
	if sq.out == nil {
		return
	}
	var obs []storage.Observer
	for _, g := range sq.groups {
		if g.agg != nil {
			obs = append(obs, g.agg)
		}
	}
	switch len(obs) {
	case 0:
		sq.out.SetObserver(nil)
	case 1:
		sq.out.SetObserver(obs[0])
	default:
		sq.out.SetObserver(&fanoutObserver{obs: obs})
	}
}

// resyncSensor rebuilds every maintainer watching the sensor from the
// live window (SetObserver truncate+replays through the fanout), so
// subtract-on-evict float drift cannot accumulate past the resync
// bound on the client-query path either. Reinstalling the whole set
// keeps the single-observer contract simple; a spurious concurrent
// resync just replays twice, each time to a consistent state.
func (r *QueryRepository) resyncSensor(sensor string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sq := r.bySensor[sensor]; sq != nil {
		r.resetObserverLocked(sq)
	}
}

// Unregister removes a query in O(1): the per-sensor index is
// map-backed, so no slice splice scans the sensor's query list.
func (r *QueryRepository) Unregister(id int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queries[id]
	if !ok {
		return fmt.Errorf("core: no client query %d", id)
	}
	delete(r.queries, id)
	g := q.group
	delete(g.subs, id)
	if len(g.subs) == 0 {
		if sq := r.bySensor[q.Sensor]; sq != nil {
			delete(sq.groups, g.sql)
			if g.agg != nil {
				r.resetObserverLocked(sq)
			}
			if len(sq.groups) == 0 {
				delete(r.bySensor, q.Sensor)
			}
		}
	}
	return nil
}

// UnregisterSensor drops every query watching the sensor (called on
// undeploy).
func (r *QueryRepository) UnregisterSensor(sensor string) int {
	canonical := stream.CanonicalName(sensor)
	r.mu.Lock()
	defer r.mu.Unlock()
	sq := r.bySensor[canonical]
	if sq == nil {
		return 0
	}
	n := 0
	for _, g := range sq.groups {
		for id := range g.subs {
			delete(r.queries, id)
			n++
		}
	}
	if sq.out != nil {
		sq.out.SetObserver(nil)
	}
	delete(r.bySensor, canonical)
	return n
}

// Count reports the number of registered queries.
func (r *QueryRepository) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// GroupCount reports the number of distinct evaluation groups for a
// sensor (duplicate SQL dedupes into one).
func (r *QueryRepository) GroupCount(sensor string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if sq := r.bySensor[stream.CanonicalName(sensor)]; sq != nil {
		return len(sq.groups)
	}
	return 0
}

// groupWork is one group plus its subscriber snapshot, taken under the
// repository lock so evaluation runs without it (callbacks may
// re-enter Register/Unregister).
type groupWork struct {
	g    *queryGroup
	subs []*ClientQuery
}

// sharedWindow materialises the sensor's output window at most once
// per sweep, shared by every group (the seed re-scanned the table once
// per registered query). Rows are zero-copy with respect to the
// element store and read-only to every consumer.
type sharedWindow struct {
	table *storage.Table // nil → resolve through the catalog
	name  string
	cat   sqlengine.Catalog

	once sync.Once
	rel  *sqlengine.Relation
	err  error
}

func (s *sharedWindow) relation() (*sqlengine.Relation, error) {
	s.once.Do(func() {
		if s.table != nil {
			s.rel = sqlengine.RelationOfSource(s.table)
			return
		}
		s.rel, s.err = s.cat.Relation(s.name)
	})
	return s.rel, s.err
}

// catalog layers the shared materialisation over the container catalog
// so fallback-path groups referencing the sensor resolve to the same
// scan instead of re-reading the table.
func (s *sharedWindow) catalog() sqlengine.Catalog {
	rel, err := s.relation()
	if err != nil || rel == nil {
		return s.cat
	}
	return sqlengine.ChainCatalog{sqlengine.MapCatalog{s.name: rel}, s.cat}
}

// EvaluateFor runs every query registered for the sensor (subject to
// each query's sampling rate) against the catalog and returns the
// number of subscriber queries evaluated. Groups evaluate at most once
// per sweep; independent groups run on the shared worker pool when
// there are enough of them to pay for the fan-out. The sweep's wall
// time feeds the client_query_time histogram — Figure 4's y-axis.
func (r *QueryRepository) EvaluateFor(sensor string, cat sqlengine.Catalog, opts sqlengine.Options) int {
	canonical := stream.CanonicalName(sensor)
	r.mu.RLock()
	sq := r.bySensor[canonical]
	if sq == nil || len(sq.groups) == 0 {
		r.mu.RUnlock()
		return 0
	}
	out := sq.out
	work := make([]groupWork, 0, len(sq.groups))
	for _, g := range sq.groups {
		subs := make([]*ClientQuery, 0, len(g.subs))
		for _, q := range g.subs {
			subs = append(subs, q)
		}
		work = append(work, groupWork{g: g, subs: subs})
	}
	r.mu.RUnlock()

	start := time.Now()
	shared := &sharedWindow{table: out, name: canonical, cat: cat}

	// Completion is tracked per work item, never per helper task: the
	// caller always participates, so even if every submitted helper sits
	// behind busy pool workers (or another sweep occupies the whole
	// pool), the caller drains the index itself and the wait below
	// cannot deadlock. A helper that finally runs after the sweep
	// finished finds the index exhausted and returns without touching
	// anything.
	var evaluated atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(len(work))
	runRange := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(work) {
				return
			}
			evaluated.Add(int64(r.safeEvalGroup(work[i], shared, cat, opts)))
			wg.Done()
		}
	}

	// Fan out only when the sweep is wide enough for the scheduling to
	// pay off; a deployment with a couple of groups stays inline.
	//
	// Worker sizing is GOMAXPROCS-aware with a per-worker floor instead
	// of the old fixed fanOutThreshold=4 (tuned at GOMAXPROCS=1, where
	// the pool never fans out): waking a helper costs on the order of a
	// microsecond of submit/wakeup/wg accounting while a typical
	// compiled group evaluates in ~10–20µs, so a helper is only worth
	// waking when it gets at least minGroupsPerSweepWorker groups of
	// its own. That keeps scheduling overhead a few percent at worst at
	// any core count, stops an 8-core box from waking 7 helpers for an
	// 8-group sweep (each stealing one group), and still saturates the
	// pool on wide sweeps.
	const minGroupsPerSweepWorker = 2
	workers := runtime.GOMAXPROCS(0)
	if workers > maxSweepWorkers {
		workers = maxSweepWorkers
	}
	if byWidth := len(work) / minGroupsPerSweepWorker; workers > byWidth {
		workers = byWidth
	}
	if workers >= 2 {
		for i := 1; i < workers; i++ {
			if !r.submit(runRange) {
				break // pool saturated or closed: the caller covers the rest
			}
		}
	}
	runRange()
	wg.Wait()

	if n := int(evaluated.Load()); n > 0 {
		r.sweepTime.Observe(time.Since(start))
		return n
	}
	return 0
}

// ScheduleSweep queues an asynchronous EvaluateFor on the worker pool,
// coalescing per sensor: while a sweep is pending and has not started
// reading windows, further triggers collapse into it (the pending
// sweep sees their elements — inserts complete before scheduling, and
// the sweep clears the flag before materialising any window). The
// async trigger pipeline uses this so a burst costs one repository
// sweep, not one per output element.
func (r *QueryRepository) ScheduleSweep(sensor string, cat sqlengine.Catalog, opts sqlengine.Options) {
	canonical := stream.CanonicalName(sensor)
	r.mu.RLock()
	sq := r.bySensor[canonical]
	r.mu.RUnlock()
	if sq == nil {
		return
	}
	if !sq.sweepPending.CompareAndSwap(false, true) {
		r.coalesced.Inc()
		return
	}
	sweep := func() {
		// Clear before reading any window: an arrival after this point
		// schedules a fresh sweep, an arrival before it is already in
		// the table and covered by this one.
		sq.sweepPending.Store(false)
		r.EvaluateFor(canonical, cat, opts)
	}
	if !r.submit(sweep) {
		sweep()
	}
}

// safeEvalGroup runs evalGroup with panic isolation (life-cycle
// manager duty): one panicking subscriber callback must not take down
// the sweep, a pool worker, or — with the sweep's per-item completion
// accounting — hang EvaluateFor. Panics are counted on
// client_query_panics.
func (r *QueryRepository) safeEvalGroup(w groupWork, shared *sharedWindow,
	cat sqlengine.Catalog, opts sqlengine.Options) (n int) {
	defer func() {
		if rec := recover(); rec != nil {
			r.metrics.Counter("client_query_panics").Inc()
		}
	}()
	return r.evalGroup(w, shared, cat, opts)
}

// evalGroup evaluates one group once and fans the result out to the
// subscribers whose sampling admitted this trigger. It returns the
// number of subscriber queries served.
func (r *QueryRepository) evalGroup(w groupWork, shared *sharedWindow,
	cat sqlengine.Catalog, opts sqlengine.Options) int {
	live := w.subs[:0:0]
	for _, q := range w.subs {
		if q.sample() {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return 0
	}

	g := w.g
	start := time.Now()
	var rel *sqlengine.Relation
	var err error
	switch {
	case g.agg != nil:
		if g.agg.NeedsResync() {
			// Bounded float drift: reinstall the sensor's observer set,
			// which truncate+replays the live window into every
			// maintainer (mirrors the sensor-source resync path).
			r.resyncSensor(g.sensor)
			r.metrics.Counter("client_query_resyncs").Inc()
		}
		// Read under the table lock so the aggregates reflect exactly
		// the live window. A poisoned maintainer (nil result) falls
		// through to the compiled plan, which surfaces the type error.
		shared.table.WithLock(func() { rel = g.agg.Result() })
		if rel != nil {
			r.tierIncrement.Inc()
			break
		}
		fallthrough
	case g.plan != nil:
		var win *sqlengine.Relation
		win, err = shared.relation()
		if err == nil {
			rel, err = g.plan.Execute(win.Rows, opts)
			r.tierCompiled.Inc()
		}
	default:
		rel, err = sqlengine.Execute(g.stmt, shared.catalog(), opts)
		r.tierGeneral.Inc()
	}
	elapsed := time.Since(start)

	for _, q := range live {
		q.evaluations.Add(1)
		q.lastLatency.Store(int64(elapsed))
		if err != nil {
			q.errors.Add(1)
		} else if q.cb != nil {
			q.cb(rel)
		}
	}
	return len(live)
}

// EvaluateForSerial replicates the seed's evaluation strategy — every
// registered query re-executed independently, interpreted, with its
// own window scan — for the equivalence property tests and as the
// baseline of the queries benchmark. Results and per-query counters
// are identical to EvaluateFor's; only the cost model differs.
func (r *QueryRepository) EvaluateForSerial(sensor string, cat sqlengine.Catalog, opts sqlengine.Options) int {
	canonical := stream.CanonicalName(sensor)
	r.mu.RLock()
	sq := r.bySensor[canonical]
	if sq == nil {
		r.mu.RUnlock()
		return 0
	}
	var list []*ClientQuery
	for _, g := range sq.groups {
		for _, q := range g.subs {
			list = append(list, q)
		}
	}
	r.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })

	evaluated := 0
	for _, q := range list {
		if !q.sample() {
			continue
		}
		start := time.Now()
		rel, err := sqlengine.Execute(q.group.stmt, cat, opts)
		elapsed := time.Since(start)
		q.evaluations.Add(1)
		q.lastLatency.Store(int64(elapsed))
		if err != nil {
			q.errors.Add(1)
		}
		evaluated++
		if err == nil && q.cb != nil {
			q.cb(rel)
		}
	}
	return evaluated
}

// Stats lists per-query counters ordered by id.
func (r *QueryRepository) Stats() []ClientQueryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ClientQueryStats, 0, len(r.queries))
	for _, q := range r.queries {
		out = append(out, ClientQueryStats{
			ID:           q.ID,
			Sensor:       q.Sensor,
			SQL:          q.SQL,
			Evaluations:  q.evaluations.Load(),
			Errors:       q.errors.Load(),
			LastLatency:  time.Duration(q.lastLatency.Load()),
			SamplingRate: q.SamplingRate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
