package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gsn/internal/sqlengine"
	"gsn/internal/sqlparser"
	"gsn/internal/stream"
)

// ClientQuery is one registered continuous query (a subscription in the
// paper's query repository, §4). The query re-executes against the
// container's stored streams whenever the watched virtual sensor
// produces an element; results go to the callback.
type ClientQuery struct {
	ID int64
	// Sensor is the watched virtual sensor (canonical name).
	Sensor string
	// SQL is the query text.
	SQL string
	// SamplingRate in (0,1] evaluates the query on that fraction of
	// triggers.
	SamplingRate float64

	stmt *sqlparser.SelectStatement
	rng  *rand.Rand
	cb   func(*sqlengine.Relation)

	mu          sync.Mutex
	evaluations uint64
	errors      uint64
	lastLatency time.Duration
}

// ClientQueryStats reports one registered query's counters.
type ClientQueryStats struct {
	ID           int64
	Sensor       string
	SQL          string
	Evaluations  uint64
	Errors       uint64
	LastLatency  time.Duration
	SamplingRate float64
}

// QueryRepository manages registered client queries — GSN's query
// repository, which "defines and maintains the set of currently active
// queries for the query processor".
type QueryRepository struct {
	mu       sync.RWMutex
	nextID   int64
	queries  map[int64]*ClientQuery
	bySensor map[string][]*ClientQuery
}

// NewQueryRepository creates an empty repository.
func NewQueryRepository() *QueryRepository {
	return &QueryRepository{
		queries:  make(map[int64]*ClientQuery),
		bySensor: make(map[string][]*ClientQuery),
	}
}

// Register validates and adds a continuous query bound to a sensor.
// sampling of 0 means 1 (always). The callback may be nil (evaluate and
// discard — the Figure 4 load shape).
func (r *QueryRepository) Register(sensor, sql string, sampling float64, cb func(*sqlengine.Relation)) (int64, error) {
	if sampling < 0 || sampling > 1 {
		return 0, fmt.Errorf("core: sampling rate %v outside [0,1]", sampling)
	}
	if sampling == 0 {
		sampling = 1
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, fmt.Errorf("core: client query: %w", err)
	}
	canonical := stream.CanonicalName(sensor)
	if canonical == "" {
		return 0, fmt.Errorf("core: client query needs a sensor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	q := &ClientQuery{
		ID:           r.nextID,
		Sensor:       canonical,
		SQL:          sql,
		SamplingRate: sampling,
		stmt:         stmt,
		rng:          rand.New(rand.NewSource(r.nextID * 2654435761)),
		cb:           cb,
	}
	r.queries[q.ID] = q
	r.bySensor[canonical] = append(r.bySensor[canonical], q)
	return q.ID, nil
}

// Unregister removes a query.
func (r *QueryRepository) Unregister(id int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queries[id]
	if !ok {
		return fmt.Errorf("core: no client query %d", id)
	}
	delete(r.queries, id)
	list := r.bySensor[q.Sensor]
	for i, candidate := range list {
		if candidate.ID == id {
			r.bySensor[q.Sensor] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return nil
}

// UnregisterSensor drops every query watching the sensor (called on
// undeploy).
func (r *QueryRepository) UnregisterSensor(sensor string) int {
	canonical := stream.CanonicalName(sensor)
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.bySensor[canonical]
	for _, q := range list {
		delete(r.queries, q.ID)
	}
	delete(r.bySensor, canonical)
	return len(list)
}

// Count reports the number of registered queries.
func (r *QueryRepository) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.queries)
}

// EvaluateFor runs every query registered for the sensor (subject to
// each query's sampling rate) against the catalog and returns the
// number evaluated. The caller wraps it in a latency histogram — the
// total wall time of this call is Figure 4's y-axis.
func (r *QueryRepository) EvaluateFor(sensor string, cat sqlengine.Catalog, opts sqlengine.Options) int {
	canonical := stream.CanonicalName(sensor)
	r.mu.RLock()
	list := make([]*ClientQuery, len(r.bySensor[canonical]))
	copy(list, r.bySensor[canonical])
	r.mu.RUnlock()

	evaluated := 0
	for _, q := range list {
		q.mu.Lock()
		skip := q.SamplingRate < 1 && q.rng.Float64() >= q.SamplingRate
		q.mu.Unlock()
		if skip {
			continue
		}
		start := time.Now()
		rel, err := sqlengine.Execute(q.stmt, cat, opts)
		elapsed := time.Since(start)
		q.mu.Lock()
		q.evaluations++
		q.lastLatency = elapsed
		if err != nil {
			q.errors++
		}
		q.mu.Unlock()
		evaluated++
		if err == nil && q.cb != nil {
			q.cb(rel)
		}
	}
	return evaluated
}

// Stats lists per-query counters ordered by id.
func (r *QueryRepository) Stats() []ClientQueryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ClientQueryStats, 0, len(r.queries))
	for _, q := range r.queries {
		q.mu.Lock()
		out = append(out, ClientQueryStats{
			ID:           q.ID,
			Sensor:       q.Sensor,
			SQL:          q.SQL,
			Evaluations:  q.evaluations,
			Errors:       q.errors,
			LastLatency:  q.lastLatency,
			SamplingRate: q.SamplingRate,
		})
		q.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
