package core

import (
	"fmt"
	"sort"
	"strings"

	"gsn/internal/stream"
	"gsn/internal/vsensor"
)

// The container maintains an explicit dependency graph over its
// deployed sensors: an edge A → B means A has a local source consuming
// B's output stream. Deploy records edges and rejects dangling
// dependencies, Redeploy rejects swaps that would close a cycle,
// Undeploy refuses (or cascades) when dependents exist, and batch
// deployment topologically orders descriptors so a multi-file
// composition graph comes up in one pass regardless of file order.

// GraphEdge is one dependency edge: Sensor consumes Upstream's output.
type GraphEdge struct {
	Sensor   string `json:"sensor"`
	Upstream string `json:"upstream"`
}

// Graph returns the dependency adjacency: every deployed sensor mapped
// to the sorted list of sensors its local sources consume (empty slice
// for sensors without local inputs).
func (c *Container) Graph() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string, len(c.sensors))
	for name := range c.sensors {
		out[name] = append([]string(nil), c.deps[name]...)
	}
	return out
}

// Dependents lists the sensors whose local sources consume name's
// output, sorted.
func (c *Container) Dependents(name string) []string {
	canonical := stream.CanonicalName(name)
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dependentsLocked(canonical)
}

func (c *Container) dependentsLocked(name string) []string {
	var out []string
	for sensor, ups := range c.deps {
		for _, up := range ups {
			if up == name {
				out = append(out, sensor)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// transitiveDependentsLocked returns every sensor that directly or
// transitively consumes name, in reverse topological order (leaves
// first) so callers can tear them down without ever breaking an edge.
func (c *Container) transitiveDependentsLocked(name string) []string {
	seen := map[string]bool{name: true}
	var order []string
	var visit func(string)
	visit = func(n string) {
		for _, dep := range c.dependentsLocked(n) {
			if !seen[dep] {
				seen[dep] = true
				visit(dep)
				order = append(order, dep)
			}
		}
	}
	visit(name)
	// Post-order appends a sensor only after everything consuming it:
	// the most downstream sensors come first.
	return order
}

// wouldCycleLocked reports whether giving name the dependency set deps
// (replacing its current edges, as a redeploy does) would close a
// cycle: some dep reaches name through the rest of the graph.
func (c *Container) wouldCycleLocked(name string, deps []string) bool {
	seen := map[string]bool{}
	var reaches func(from string) bool
	reaches = func(from string) bool {
		if from == name {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for _, up := range c.deps[from] {
			if reaches(up) {
				return true
			}
		}
		return false
	}
	for _, d := range deps {
		if reaches(d) {
			return true
		}
	}
	return false
}

// checkDepsLocked validates a dependency set against the running
// graph: every upstream must be deployed (dangling edges are rejected
// at deploy time, not discovered at first trigger).
func (c *Container) checkDepsLocked(name string, deps []string) error {
	for _, dep := range deps {
		if dep == name {
			return fmt.Errorf("core: %s: local source cannot depend on its own sensor", name)
		}
		if _, ok := c.sensors[dep]; !ok {
			// On a clustered node the upstream may live on a peer: the
			// edge then resolves to a remote source instead of the
			// composition bus. The edge stays in the graph either way,
			// so Graph() shows cross-node composition too. (Lock order
			// mu → clusterMu; nothing takes the reverse.)
			if cl := c.Cluster(); cl != nil && len(cl.Owners(dep)) > 0 {
				continue
			}
			return fmt.Errorf("core: %s: local source depends on %s, which is not deployed (deploy it first, or deploy both in one batch)",
				name, dep)
		}
	}
	return nil
}

// SortDescriptors topologically orders descriptors by their local
// dependencies (upstream first) so a batch containing a composition
// graph deploys in one pass regardless of input order. Dependencies
// outside the batch are assumed deployed (Deploy verifies). Ties keep
// priority order (higher first), then the caller's order, so the
// pre-existing priority contract still breaks ties. A dependency cycle
// within the batch is an error naming its members.
func SortDescriptors(descs []*vsensor.Descriptor) ([]*vsensor.Descriptor, error) {
	n := len(descs)
	byName := make(map[string]int, n)
	for i, d := range descs {
		name := stream.CanonicalName(d.Name)
		if prev, dup := byName[name]; dup {
			return nil, fmt.Errorf("core: duplicate descriptor for %s (positions %d and %d)", name, prev, i)
		}
		byName[name] = i
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, d := range descs {
		for _, dep := range d.LocalDependencies() {
			if j, inBatch := byName[dep]; inBatch {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	// Kahn's algorithm; the ready set stays ordered by (priority desc,
	// original position) for deterministic output.
	ready := make([]int, 0, n)
	for i := range descs {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	less := func(a, b int) bool {
		if descs[a].Priority != descs[b].Priority {
			return descs[a].Priority > descs[b].Priority
		}
		return a < b
	}
	sort.Slice(ready, func(x, y int) bool { return less(ready[x], ready[y]) })
	out := make([]*vsensor.Descriptor, 0, n)
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		out = append(out, descs[i])
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				at := sort.Search(len(ready), func(k int) bool { return less(j, ready[k]) })
				ready = append(ready, 0)
				copy(ready[at+1:], ready[at:])
				ready[at] = j
			}
		}
	}
	if len(out) != n {
		var cyclic []string
		for i, d := range descs {
			if indeg[i] > 0 {
				cyclic = append(cyclic, stream.CanonicalName(d.Name))
			}
		}
		sort.Strings(cyclic)
		return nil, fmt.Errorf("core: dependency cycle among virtual sensors: %s", strings.Join(cyclic, ", "))
	}
	return out, nil
}

// DeployAll deploys a batch of descriptors in topological dependency
// order, so a multi-file composition graph comes up in one pass. It
// returns the names deployed so far (in order) and the first error;
// earlier deployments are left running on error, matching DeployDir's
// contract.
func (c *Container) DeployAll(descs []*vsensor.Descriptor) ([]string, error) {
	ordered, err := SortDescriptors(descs)
	if err != nil {
		return nil, err
	}
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	var deployed []string
	for _, d := range ordered {
		if err := c.deploy(d); err != nil {
			return deployed, err
		}
		deployed = append(deployed, d.Name)
	}
	return deployed, nil
}

// UndeployCascade removes a virtual sensor together with every sensor
// that transitively consumes its output, most-downstream first, so no
// teardown step ever leaves a dangling edge. It returns the removed
// names in teardown order. Each cascaded removal (beyond the named
// sensor itself) is counted on cascade_undeploys.
func (c *Container) UndeployCascade(name string) ([]string, error) {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	canonical := stream.CanonicalName(name)
	c.mu.RLock()
	_, ok := c.sensors[canonical]
	victims := c.transitiveDependentsLocked(canonical)
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: virtual sensor %s is not deployed", canonical)
	}
	removed := make([]string, 0, len(victims)+1)
	for _, v := range victims {
		if err := c.undeploy(v); err != nil {
			return removed, err
		}
		c.metrics.Counter("cascade_undeploys").Inc()
		removed = append(removed, v)
	}
	if err := c.undeploy(canonical); err != nil {
		return removed, err
	}
	return append(removed, canonical), nil
}
