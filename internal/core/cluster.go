package core

import (
	"fmt"
	"strings"

	"gsn/internal/sqlengine"
	"gsn/internal/sqlparser"
	"gsn/internal/stream"
	"gsn/internal/wrappers"
)

// Cluster is the federation surface the p2p layer injects into a
// container (SetCluster): sensor placement lookup over the gossiped
// directory, remote composition edges over the exactly-once stream
// protocol, and the three query transports — partial-aggregate
// shipping, whole-statement routing, and raw row union. The interface
// lives here (and p2p implements it) because p2p already imports core;
// the container only ever talks to placements and transports, never to
// HTTP.
type Cluster interface {
	// Owners returns the base URLs of peer nodes currently publishing
	// the named sensor, excluding this node, sorted — the deterministic
	// coordinator contract ordering for partial merges and unions.
	Owners(sensor string) []string
	// Schema fetches the sensor's output schema from a peer, for
	// compiling statements against streams this node does not hold.
	Schema(owner, sensor string) (*stream.Schema, error)
	// RemoteSource builds a wrapper streaming the named sensor from an
	// owning peer — the network-transparent composition edge. The
	// returned wrapper rides the ordinary quality chain and window
	// table, exactly like an in-process local source. params carries the
	// descriptor's extra address predicates (poll, degrade-after,
	// key-id, …) so a cross-node edge tunes like an explicit remote one.
	RemoteSource(sensor string, params map[string]string) (wrappers.Wrapper, error)
	// PartialQuery runs the node-side half of a distributable grouped
	// statement on a peer: WHERE + GROUP BY fold over the peer's window,
	// shipped back as mergeable aggregate states.
	PartialQuery(owner, sql string) (*sqlengine.PartialRollup, error)
	// RouteQuery executes a whole statement on the owning peer and
	// returns typed rows (the non-distributable single-owner path).
	RouteQuery(owner, sql string) (*sqlengine.Relation, error)
	// UnionRows fetches a peer's full window of the named table — the
	// raw-row transport of the union fallback, accounted separately so
	// partial-aggregate shipping can be compared against it.
	UnionRows(owner, table string) (*sqlengine.Relation, error)
	// RegisterRemote registers a continuous query on the owning peer
	// and streams result revisions back into cb until stop is called.
	RegisterRemote(owner, sensor, sql string, sampling float64, cb func(*sqlengine.Relation)) (stop func(), err error)
	// Info reports membership, placements and transport byte counters
	// for the operational surfaces (/api/cluster, gsnctl cluster).
	Info() ClusterInfo
}

// ClusterInfo is the cluster view served to operators.
type ClusterInfo struct {
	// Self is this node's advertised address.
	Self string `json:"self"`
	// Peers are the known peer base URLs.
	Peers []string `json:"peers"`
	// Placements maps sensor name to the addresses publishing it.
	Placements map[string][]string `json:"placements"`
	// PartialBytes counts response bytes moved by partial-aggregate
	// shipping; UnionBytes and RoutedBytes count the raw-row and routed
	// transports. Partial vs union is the benchmark's sublinearity
	// claim.
	PartialBytes uint64 `json:"partial_bytes"`
	UnionBytes   uint64 `json:"union_bytes"`
	RoutedBytes  uint64 `json:"routed_bytes"`
}

// SetCluster injects the federation implementation. It is set once,
// after construction (the p2p layer needs the container first), before
// the node starts serving.
func (c *Container) SetCluster(cl Cluster) {
	c.clusterMu.Lock()
	c.cluster = cl
	c.clusterMu.Unlock()
}

// Cluster returns the injected federation, or nil on a standalone
// node.
func (c *Container) Cluster() Cluster {
	c.clusterMu.RLock()
	defer c.clusterMu.RUnlock()
	return c.cluster
}

// ClusterInfo reports the cluster view, or a self-only view on a
// standalone node.
func (c *Container) ClusterInfo() ClusterInfo {
	if cl := c.Cluster(); cl != nil {
		return cl.Info()
	}
	info := ClusterInfo{Self: c.opts.NodeAddress, Placements: map[string][]string{}}
	for _, vs := range c.Sensors() {
		info.Placements[vs.Name()] = []string{c.opts.NodeAddress}
	}
	return info
}

// singleTableName returns the canonical table name when the statement
// reads exactly one plain base table (the only shape cluster routing
// understands), or "".
func singleTableName(stmt *sqlparser.SelectStatement) string {
	if stmt.Compound != nil || len(stmt.From) != 1 {
		return ""
	}
	tn, ok := stmt.From[0].(*sqlparser.TableName)
	if !ok {
		return ""
	}
	return stream.CanonicalName(tn.Name)
}

// checkFederatable errors when the statement references a table —
// anywhere: joins, compound branches, subqueries — that has remote
// owners but is not the one routable base table. Cluster routing only
// understands single-base-table statements; executing such a shape
// locally (or unioning only its base table) would resolve the other
// remotely-owned references against this node's window alone, silently
// serving a partial answer. Erroring instead upholds the
// partitioned-coordinator contract (docs/operations.md).
func checkFederatable(cl Cluster, stmt *sqlparser.SelectStatement, routable string) error {
	for _, t := range stmt.Tables() {
		name := stream.CanonicalName(t)
		if name == routable {
			continue
		}
		if owners := cl.Owners(name); len(owners) > 0 {
			return fmt.Errorf("core: statement shape is not federatable: %s also lives on %s, but only single-base-table statements resolve across the cluster — run the statement on an owning node or restrict it to one base table",
				name, strings.Join(owners, ", "))
		}
	}
	return nil
}

// routableTo reports whether shipping the whole statement to owner is
// sound: every referenced table other than the routable base must live
// solely on that owner — the owner resolves subqueries against its own
// catalog, so a table held locally (or on a different node) would make
// the routed answer silently partial. An unroutable statement falls
// through to the union path, whose own federability check decides
// between correct local resolution and an explicit error.
func (c *Container) routableTo(cl Cluster, stmt *sqlparser.SelectStatement, routable, owner string) bool {
	for _, t := range stmt.Tables() {
		name := stream.CanonicalName(t)
		if name == routable {
			continue
		}
		if _, local := c.store.Table(name); local {
			return false
		}
		if o := cl.Owners(name); len(o) != 1 || o[0] != owner {
			return false
		}
	}
	return true
}

// queryRouted is the coordinator's decision tree for one ad-hoc query.
// Local-only statements (no cluster, multi-table shapes, tables nobody
// else owns) take the cached local path untouched. For a table with
// remote owners:
//
//   - distributable grouped statements ship partial aggregates: the
//     local fold (when the table lives here too) plus one PartialQuery
//     per owner, merged in contract order (local first, owners sorted);
//   - other statements with a single remote owner and no local copy
//     route whole to the owner (when every other referenced table also
//     lives solely on that owner — see routableTo);
//   - everything else falls back to a raw row union: SELECT * from
//     every owner, concatenated with the local window, executed here.
//
// An unreachable owner fails the query with an error naming the node —
// partial answers are never served silently (partitioned-coordinator
// semantics; see docs/operations.md). The same contract makes shapes
// cluster routing cannot federate — joins, compounds or subqueries
// touching remotely-owned tables beyond the one routable base table —
// fail with an explicit "not federatable" error instead of quietly
// answering from the local window (checkFederatable).
func (c *Container) queryRouted(sql string) (*sqlengine.Relation, error) {
	cl := c.Cluster()
	if cl == nil {
		return c.LocalQuery(sql)
	}
	stmt, err := sqlengine.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	table := singleTableName(stmt)
	if table == "" {
		// Multi-table / compound shapes execute locally — but only when
		// every referenced table is purely local; a join over a
		// remotely-owned stream must fail, not silently answer from this
		// node's window.
		if err := checkFederatable(cl, stmt, ""); err != nil {
			return nil, err
		}
		return c.LocalQuery(sql)
	}
	owners := cl.Owners(table)
	if len(owners) == 0 {
		// The base table is purely local, but a subquery may still
		// reference a remotely-owned stream.
		if err := checkFederatable(cl, stmt, table); err != nil {
			return nil, err
		}
		return c.LocalQuery(sql)
	}

	localTab, hasLocal := c.store.Table(table)
	var cols []sqlengine.Column
	if hasLocal {
		cols = sqlengine.ColumnsOfSchema(localTab.Schema())
	} else {
		schema, err := cl.Schema(owners[0], table)
		if err != nil {
			return nil, fmt.Errorf("core: cluster query incomplete: owner %s unreachable resolving schema of %s: %w",
				owners[0], table, err)
		}
		cols = sqlengine.ColumnsOfSchema(schema)
	}

	if plan, err := sqlengine.Compile(stmt, cols, table); err == nil && plan.Distributable() {
		parts := make([]*sqlengine.PartialRollup, 0, len(owners)+1)
		if hasLocal {
			local, err := plan.ExecutePartial(sqlengine.RowsOfSource(localTab), c.engineOpts())
			if err != nil {
				return nil, err
			}
			parts = append(parts, local)
		}
		for _, owner := range owners {
			pr, err := cl.PartialQuery(owner, sql)
			if err != nil {
				return nil, fmt.Errorf("core: cluster query incomplete: owner %s unreachable: %w", owner, err)
			}
			parts = append(parts, pr)
		}
		c.metrics.Counter("cluster_partial_queries").Inc()
		return plan.MergePartials(parts, c.engineOpts())
	}

	if !hasLocal && len(owners) == 1 && c.routableTo(cl, stmt, table, owners[0]) {
		rel, err := cl.RouteQuery(owners[0], sql)
		if err != nil {
			return nil, fmt.Errorf("core: cluster query incomplete: owner %s unreachable: %w", owners[0], err)
		}
		c.metrics.Counter("cluster_routed_queries").Inc()
		return rel, nil
	}

	// Raw row union: the correctness fallback (and the bytes-moved
	// baseline partial shipping is measured against). The union only
	// federates the base table — subqueries resolve through the local
	// catalog — so any other remotely-owned reference must fail first.
	if err := checkFederatable(cl, stmt, table); err != nil {
		return nil, err
	}
	union := &sqlengine.Relation{Cols: cols}
	if hasLocal {
		union.Rows = append(union.Rows, sqlengine.RowsOfSource(localTab)...)
	}
	for _, owner := range owners {
		rel, err := cl.UnionRows(owner, table)
		if err != nil {
			return nil, fmt.Errorf("core: cluster query incomplete: owner %s unreachable: %w", owner, err)
		}
		if len(rel.Cols) != len(union.Cols) {
			return nil, fmt.Errorf("core: owner %s serves %s with %d columns, expected %d (schema drift?)",
				owner, table, len(rel.Cols), len(union.Cols))
		}
		union.Rows = append(union.Rows, rel.Rows...)
	}
	c.metrics.Counter("cluster_union_queries").Inc()
	cat := sqlengine.ChainCatalog{sqlengine.MapCatalog{table: union}, c.Catalog()}
	return sqlengine.Execute(stmt, cat, c.engineOpts())
}

// LocalPartial runs the node-side half of a distributed grouped query
// strictly over this node's window of the statement's base table — the
// /p2p/partial endpoint's body. It never consults the cluster (the
// coordinator already did) and errors when the statement is not
// distributable here, so a coordinator falls back to routing or union.
func (c *Container) LocalPartial(sql string) (*sqlengine.PartialRollup, error) {
	stmt, err := sqlengine.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	table := singleTableName(stmt)
	if table == "" {
		return nil, fmt.Errorf("core: partial execution needs a single base table")
	}
	tab, ok := c.store.Table(table)
	if !ok {
		return nil, fmt.Errorf("core: partial execution: table %s is not stored here", table)
	}
	plan, err := sqlengine.Compile(stmt, sqlengine.ColumnsOfSchema(tab.Schema()), table)
	if err != nil {
		return nil, err
	}
	if !plan.Distributable() {
		return nil, fmt.Errorf("core: statement is not distributable")
	}
	return plan.ExecutePartial(sqlengine.RowsOfSource(tab), c.engineOpts())
}

// registerRouted forwards a continuous-query registration to the
// sensor's owning node, returning a negative id (the repository's own
// ids are positive, so dispatch never collides).
func (c *Container) registerRouted(sensor, sql string, sampling float64, cb func(*sqlengine.Relation)) (int64, error) {
	cl := c.Cluster()
	if cl == nil {
		return 0, fmt.Errorf("core: virtual sensor %s is not deployed", sensor)
	}
	owners := cl.Owners(sensor)
	if len(owners) == 0 {
		return 0, fmt.Errorf("core: virtual sensor %s is not deployed on any cluster node", sensor)
	}
	stop, err := cl.RegisterRemote(owners[0], sensor, sql, sampling, cb)
	if err != nil {
		return 0, fmt.Errorf("core: routing query registration to %s: %w", owners[0], err)
	}
	c.routedMu.Lock()
	c.routedNext++
	id := -c.routedNext
	if c.routedQueries == nil {
		c.routedQueries = make(map[int64]func())
	}
	c.routedQueries[id] = stop
	c.routedMu.Unlock()
	c.metrics.Counter("cluster_routed_registrations").Inc()
	return id, nil
}

// stopRoutedQueries cancels every routed registration (Close path).
func (c *Container) stopRoutedQueries() {
	c.routedMu.Lock()
	stops := make([]func(), 0, len(c.routedQueries))
	for _, stop := range c.routedQueries {
		stops = append(stops, stop)
	}
	c.routedQueries = nil
	c.routedMu.Unlock()
	for _, stop := range stops {
		stop()
	}
}
