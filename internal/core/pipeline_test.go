package core

import (
	"fmt"
	"testing"
	"time"

	"gsn/internal/stream"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pipelineDescriptor builds a one-source sensor whose source query is
// given verbatim; both sensors in the equivalence test share the mote
// wrapper seed so they see identical readings.
func pipelineDescriptor(name, sourceQuery string) string {
	return fmt.Sprintf(`
<virtual-sensor name=%q>
  <output-structure>
    <field name="n" type="integer"/>
    <field name="a" type="double"/>
  </output-structure>
  <storage size="100"/>
  <input-stream name="in">
    <stream-source alias="src" storage-size="8">
      <address wrapper="mote">
        <predicate key="sensors" val="temperature"/>
        <predicate key="seed" val="11"/>
      </address>
      <query>%s</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>`, name, sourceQuery)
}

// TestIncrementalPipelineMatchesGeneral deploys the same workload
// three ways — incremental aggregates (count window + agg-only query),
// compiled plan (same query with a WHERE so incremental is off), and
// the general engine (derived-table FROM the compiler rejects) — and
// checks the incremental and general tiers produce identical outputs
// element for element.
func TestIncrementalPipelineMatchesGeneral(t *testing.T) {
	c := testContainer(t)
	aggQuery := "select count(temperature) as n, avg(temperature) as a from wrapper"
	generalQuery := "select count(temperature) as n, avg(temperature) as a from (select * from wrapper) wrapper"
	deploy(t, c, pipelineDescriptor("fast", aggQuery))
	deploy(t, c, pipelineDescriptor("slow", generalQuery))

	fast, _ := c.Sensor("fast")
	slow, _ := c.Sensor("slow")
	if fast.streams[0].sources[0].agg == nil {
		t.Fatal("agg-only source query over a count window should run incrementally")
	}
	if slow.streams[0].sources[0].plan != nil {
		t.Fatal("derived-table source query should NOT compile (it is the fallback control)")
	}

	for i := 0; i < 30; i++ {
		c.Pulse()
	}

	fe := fast.Output().Snapshot()
	se := slow.Output().Snapshot()
	if len(fe) == 0 || len(fe) != len(se) {
		t.Fatalf("output lengths: incremental=%d general=%d", len(fe), len(se))
	}
	for i := range fe {
		for j := 0; j < fe[i].Len(); j++ {
			fv, sv := fe[i].Value(j), se[i].Value(j)
			if ff, ok := fv.(float64); ok {
				sf, ok := sv.(float64)
				if !ok || ff-sf > 1e-9 || sf-ff > 1e-9 {
					t.Fatalf("element %d field %d: incremental %v vs general %v", i, j, fv, sv)
				}
				continue
			}
			if fv != sv {
				t.Fatalf("element %d field %d: incremental %v vs general %v", i, j, fv, sv)
			}
		}
	}

	if got := c.Metrics().Counter("source_eval_incremental").Value(); got == 0 {
		t.Error("incremental tier was never used")
	}
	if got := c.Metrics().Counter("source_eval_general").Value(); got == 0 {
		t.Error("general tier was never used")
	}
}

// TestCompiledStreamPlan checks the deploy-time compiled output-query
// path: a single-source stream whose source query compiles should also
// get a compiled stream plan, and still produce correct outputs.
func TestCompiledStreamPlan(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, pipelineDescriptor("planned", "select count(temperature) as n, avg(temperature) as a from wrapper"))
	vs, _ := c.Sensor("planned")
	if vs.streams[0].plan == nil {
		t.Fatal("single-source stream query should compile at deploy time")
	}
	for i := 0; i < 10; i++ {
		c.Pulse()
	}
	st := vs.Stats()
	if st.Errors != 0 {
		t.Fatalf("errors: %+v", st)
	}
	if st.Outputs != 10 {
		t.Fatalf("outputs = %d, want 10", st.Outputs)
	}
	latest, ok := vs.Output().Latest()
	if !ok {
		t.Fatal("no output")
	}
	// Window is a count window of 8: after 10 pulses COUNT must be 8.
	if latest.Value(0) != int64(8) {
		t.Errorf("count over 8-window = %v, want 8", latest.Value(0))
	}
}

// TestTriggerCoalescingCounts: in async mode a burst that outruns the
// single worker collapses into few evaluations, every trigger is
// accounted as output, drop or coalesce, and the final evaluation sees
// the complete window (no lost data).
func TestTriggerCoalescingCounts(t *testing.T) {
	c, err := New(Options{Clock: stream.SystemClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deploy(t, c, `
<virtual-sensor name="burst">
  <life-cycle pool-size="1"/>
  <output-structure><field name="n" type="integer"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1000">
      <address wrapper="random-walk"><predicate key="seed" val="3"/></address>
      <query>select count(*) as n from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`)
	const burst = 500
	for i := 0; i < burst; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("burst")
	waitFor(t, func() bool {
		st := vs.Stats()
		return st.Outputs+st.Dropped+st.Coalesced >= burst
	})
	st := vs.Stats()
	if st.Triggers != burst {
		t.Fatalf("triggers = %d, want %d", st.Triggers, burst)
	}
	if st.Outputs+st.Dropped+st.Coalesced != burst {
		t.Errorf("accounting gap: outputs=%d dropped=%d coalesced=%d", st.Outputs, st.Dropped, st.Coalesced)
	}
	if c.Metrics().Counter("triggers_coalesced").Value() != st.Coalesced {
		t.Errorf("metrics counter %d != sensor stat %d",
			c.Metrics().Counter("triggers_coalesced").Value(), st.Coalesced)
	}
	// The last evaluation covers the burst: its COUNT reflects every
	// inserted element, proving coalescing loses evaluations, not data.
	waitFor(t, func() bool {
		latest, ok := vs.Output().Latest()
		return ok && latest.Value(0) == int64(burst)
	})
}
