package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsn/internal/metrics"
	"gsn/internal/sqlengine"
	"gsn/internal/storage"
	"gsn/internal/stream"
)

// deployVals builds a sensor whose output window holds integer source
// values verbatim — the substrate for the client-query tests. Integer
// inputs keep float aggregation exact, so the grouped/incremental and
// serial interpreted paths must agree to the last byte even across
// window eviction; the output is a count window so aggregate-only
// client queries qualify for incremental maintenance.
func deployVals(t testing.TB, c *Container, rows int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vals.csv")
	data := "v\n"
	for i := 0; i < rows; i++ {
		data += fmt.Sprintf("%d\n", (i*37)%101)
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	desc := fmt.Sprintf(`
<virtual-sensor name="vals">
  <output-structure>
    <field name="value" type="integer"/>
  </output-structure>
  <storage size="100" />
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="csv">
        <predicate key="file" val=%q/>
        <predicate key="types" val="integer"/>
      </address>
      <query>select v as value from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`, path)
	if err := c.DeployXML([]byte(desc)); err != nil {
		t.Fatalf("DeployXML: %v", err)
	}
}

// clientQueryShapes covers every evaluation tier the repository
// serves: incremental aggregates (ungrouped and grouped), compiled
// plans with WHERE / GROUP BY / HAVING / ORDER BY / LIMIT, and
// full-engine fallbacks (subquery).
var clientQueryShapes = []string{
	"select count(*), avg(value) from vals",                                                   // incremental
	"select count(*) as n, min(value) as lo, max(value) as hi from vals",                      // incremental
	"select value from vals where value > 5",                                                  // compiled filter
	"select value, timed from vals where value <= 20 order by value desc",                     // compiled sort
	"select avg(value) from vals where timed > 0",                                             // compiled agg+filter
	"select value from vals order by timed desc limit 3",                                      // compiled limit
	"select value from vals where value > (select avg(value) from vals)",                      // fallback subquery
	"select count(*) from vals where value between -1000 and 1000",                            // compiled between
	"select value * 2 as dbl from vals where value >= -1e12 limit 5",                          // compiled expr
	"select distinct value from vals where value > -1000000 order by value",                   // compiled distinct
	"select value, count(*) as n from vals group by value",                                    // incremental grouped
	"select value % 7 as bucket, count(*) as n, avg(value) as a from vals group by value % 7", // compiled grouped (expr key)
	"select value, count(*) as n from vals group by value having count(*) > 1",                // compiled grouped + HAVING
	"select value, count(*) as n from vals group by value having count(*) > 1000",             // HAVING filters all groups
	"select value, count(*) as n from vals where value > 100000 group by value",               // empty group set
	"select value % 5 as b, max(value) as m from vals group by value % 5 order by m desc, b",  // grouped + ORDER BY
}

// TestGroupedEvaluationMatchesSerial is the equivalence property test:
// for every bench query shape the compiled/shared/grouped path must
// deliver results byte-identical to the seed's per-query interpreted
// path, trigger after trigger, while the window slides.
func TestGroupedEvaluationMatchesSerial(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 200)

	type captured struct {
		mu   sync.Mutex
		last map[int]string
	}
	grouped := &captured{last: make(map[int]string)}
	serial := &captured{last: make(map[int]string)}
	record := func(cap *captured, i int) func(*sqlengine.Relation) {
		return func(rel *sqlengine.Relation) {
			cap.mu.Lock()
			cap.last[i] = rel.String()
			cap.mu.Unlock()
		}
	}

	// Two subscribers per shape through the repository under test (so
	// shapes dedupe into one group with fan-out) …
	repo := c.QueryRepositoryRef()
	for i, sql := range clientQueryShapes {
		if _, err := c.RegisterQuery("vals", sql, 1, record(grouped, i)); err != nil {
			t.Fatalf("register %q: %v", sql, err)
		}
		if _, err := c.RegisterQuery("vals", sql, 1, nil); err != nil {
			t.Fatalf("register dup %q: %v", sql, err)
		}
	}
	// … and a shadow repository evaluated with the seed's serial
	// interpreted strategy.
	shadow := NewQueryRepository(nil)
	for i, sql := range clientQueryShapes {
		if _, err := shadow.Register("vals", sql, 1, record(serial, i), nil); err != nil {
			t.Fatalf("shadow register %q: %v", sql, err)
		}
	}

	for pulse := 0; pulse < 150; pulse++ {
		c.Pulse() // sync mode: the repository sweep runs inline
		shadow.EvaluateForSerial("vals", c.Catalog(), sqlengine.Options{Clock: c.Clock()})
		for i, sql := range clientQueryShapes {
			g, s := grouped.last[i], serial.last[i]
			if g != s {
				t.Fatalf("pulse %d, shape %q:\ngrouped:\n%s\nserial:\n%s", pulse, sql, g, s)
			}
		}
	}

	if got := repo.GroupCount("vals"); got != len(clientQueryShapes) {
		t.Errorf("GroupCount = %d, want %d (duplicates must dedupe)", got, len(clientQueryShapes))
	}
	if repo.Count() != 2*len(clientQueryShapes) {
		t.Errorf("Count = %d, want %d", repo.Count(), 2*len(clientQueryShapes))
	}
	for _, st := range repo.Stats() {
		if st.Errors != 0 {
			t.Errorf("query %q: %d errors", st.SQL, st.Errors)
		}
		if st.Evaluations != 150 {
			t.Errorf("query %q: %d evaluations, want 150", st.SQL, st.Evaluations)
		}
	}
}

// TestRepositoryConcurrentRegisterUnregister races Register/Unregister
// against sweeps and the trigger pipeline (run with -race). The sweep
// goroutines keep going until every mutator has finished, so overlap
// is guaranteed regardless of scheduling.
func TestRepositoryConcurrentRegisterUnregister(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 2000)
	for i := 0; i < 50; i++ {
		c.Pulse()
	}
	repo := c.QueryRepositoryRef()

	var mutators, sweepers sync.WaitGroup
	var mutatorsDone atomic.Bool
	var delivered atomic.Int64
	// One persistent always-sampled subscriber guarantees a delivery on
	// every sweep regardless of how the mutators schedule.
	keepID, err := c.RegisterQuery("vals", "select count(*) from vals", 1,
		func(*sqlengine.Relation) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		mutators.Add(1)
		go func(seed int64) {
			defer mutators.Done()
			rng := rand.New(rand.NewSource(seed))
			ids := make([]int64, 0, 32)
			for op := 0; op < 400; op++ {
				if len(ids) < 16 || rng.Intn(2) == 0 {
					sql := clientQueryShapes[rng.Intn(len(clientQueryShapes))]
					id, err := c.RegisterQuery("vals", sql, 0.5+rng.Float64()/2,
						func(*sqlengine.Relation) { delivered.Add(1) })
					if err != nil {
						t.Error(err)
						return
					}
					ids = append(ids, id)
				} else {
					i := rng.Intn(len(ids))
					if err := repo.Unregister(ids[i]); err != nil {
						t.Error(err)
						return
					}
					ids = append(ids[:i], ids[i+1:]...)
				}
			}
			for _, id := range ids {
				if err := repo.Unregister(id); err != nil {
					t.Error(err)
				}
			}
		}(int64(w + 1))
	}
	sweepers.Add(1)
	go func() {
		defer sweepers.Done()
		for i := 0; i < 30 || !mutatorsDone.Load(); i++ {
			c.Pulse() // sync mode: inline trigger + repository sweep
		}
	}()
	sweepers.Add(1)
	go func() {
		defer sweepers.Done()
		for i := 0; i < 30 || !mutatorsDone.Load(); i++ {
			repo.EvaluateFor("vals", c.Catalog(), sqlengine.Options{Clock: c.Clock()})
			repo.Stats()
		}
	}()
	mutators.Wait()
	mutatorsDone.Store(true)
	sweepers.Wait()

	if err := repo.Unregister(keepID); err != nil {
		t.Fatal(err)
	}
	if repo.Count() != 0 {
		t.Errorf("Count = %d after all workers unregistered", repo.Count())
	}
	if delivered.Load() == 0 {
		t.Error("no callback ever fired under the race")
	}
}

// TestSweepCompletesWithSaturatedPool pins the no-deadlock property of
// the fan-out: with every pool worker blocked and the task queue full,
// EvaluateFor must drain all groups on the calling goroutine and
// return (completion is tracked per work item, not per helper task).
func TestSweepCompletesWithSaturatedPool(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	c := testContainer(t)
	deployVals(t, c, 60)
	for i := 0; i < 30; i++ {
		c.Pulse()
	}
	const n = 8
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf("select count(*) from vals where value > %d", i)
		if _, err := c.RegisterQuery("vals", sql, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	repo := c.QueryRepositoryRef()
	release := make(chan struct{})
	defer close(release)
	for repo.submit(func() { <-release }) {
		// Block every worker and fill the queue.
	}
	done := make(chan int, 1)
	go func() { done <- repo.EvaluateFor("vals", c.Catalog(), sqlengine.Options{Clock: c.Clock()}) }()
	select {
	case got := <-done:
		if got != n {
			t.Errorf("evaluated %d of %d with a saturated pool", got, n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep deadlocked against the saturated pool")
	}
}

// TestPanickingCallbackIsolated: one bad subscriber must not take down
// the sweep or starve other groups.
func TestPanickingCallbackIsolated(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 30)
	if _, err := c.RegisterQuery("vals", "select value from vals", 1,
		func(*sqlengine.Relation) { panic("bad subscriber") }); err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	if _, err := c.RegisterQuery("vals", "select count(*) from vals", 1,
		func(*sqlengine.Relation) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Pulse()
	}
	if delivered.Load() != 5 {
		t.Errorf("healthy subscriber delivered %d of 5", delivered.Load())
	}
	if got := c.Metrics().Counter("client_query_panics").Value(); got != 5 {
		t.Errorf("client_query_panics = %d, want 5", got)
	}
}

// TestSamplingDeterministicAndUniform pins the lock-free sampler: the
// draw sequence is deterministic per query and lands near the target
// rate.
func TestSamplingDeterministicAndUniform(t *testing.T) {
	q := &ClientQuery{SamplingRate: 0.25, seed: splitmix64(99)}
	hits := 0
	for i := 0; i < 4000; i++ {
		if q.sample() {
			hits++
		}
	}
	if hits < 850 || hits > 1150 {
		t.Errorf("sampling 0.25 over 4000 draws admitted %d", hits)
	}
	q2 := &ClientQuery{SamplingRate: 0.25, seed: splitmix64(99)}
	for i := 0; i < 4000; i++ {
		q2.sample()
	}
	if q.draws.Load() != q2.draws.Load() {
		t.Error("draw sequences diverged for identical seeds")
	}
}

// TestUnregisterSensorDetachesObserver: undeploy must drop every group
// and detach aggregate maintainers from the output table.
func TestUnregisterSensorDetachesObserver(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 50)
	for i := 0; i < 3; i++ {
		if _, err := c.RegisterQuery("vals", "select count(*), avg(value) from vals", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RegisterQuery("vals", "select count(*) from vals", 1, nil); err != nil {
		t.Fatal(err)
	}
	c.Pulse()
	if n := c.QueryRepositoryRef().UnregisterSensor("vals"); n != 4 {
		t.Fatalf("UnregisterSensor dropped %d, want 4", n)
	}
	if c.QueryRepositoryRef().Count() != 0 {
		t.Error("queries survived UnregisterSensor")
	}
	c.Pulse() // the detached observer must not fire (would panic on nil deref inside stale maintainers only if miswired)
}

// TestAggregateGroupUsesMaintainer confirms the O(1) tier actually
// serves aggregate-only client queries (the counter moves), and that
// its results track the window exactly.
func TestAggregateGroupUsesMaintainer(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 50)
	var last atomic.Value
	if _, err := c.RegisterQuery("vals", "select count(*) as n from vals", 1,
		func(rel *sqlengine.Relation) { last.Store(rel.Rows[0][0]) }); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Counter("client_query_incremental").Value()
	for i := 1; i <= 20; i++ {
		c.Pulse()
		if got := last.Load(); got != int64(i) {
			t.Fatalf("after %d pulses count = %v", i, got)
		}
	}
	if c.Metrics().Counter("client_query_incremental").Value() != before+20 {
		t.Errorf("incremental tier served %d of 20 evaluations",
			c.Metrics().Counter("client_query_incremental").Value()-before)
	}
}

// TestGroupedAggregateGroupUsesMaintainer confirms grouped rollup
// client queries are served by the O(output) grouped incremental tier
// (the counter moves) and track the sliding window exactly, group
// appearance and disappearance included.
func TestGroupedAggregateGroupUsesMaintainer(t *testing.T) {
	c := testContainer(t)
	deployVals(t, c, 200) // values cycle (i*37)%101 over a count-100 window
	var last atomic.Value
	if _, err := c.RegisterQuery("vals", "select value, count(*) as n from vals group by value", 1,
		func(rel *sqlengine.Relation) { last.Store(rel.String()) }); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Counter("client_query_incremental").Value()
	shadow := NewQueryRepository(nil)
	var want atomic.Value
	if _, err := shadow.Register("vals", "select value, count(*) as n from vals group by value", 1,
		func(rel *sqlengine.Relation) { want.Store(rel.String()) }, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 150; i++ {
		c.Pulse()
		shadow.EvaluateForSerial("vals", c.Catalog(), sqlengine.Options{Clock: c.Clock()})
		if g, s := last.Load(), want.Load(); g != s {
			t.Fatalf("pulse %d:\ngrouped incremental:\n%v\nserial:\n%v", i, g, s)
		}
	}
	if got := c.Metrics().Counter("client_query_incremental").Value() - before; got != 150 {
		t.Errorf("grouped incremental tier served %d of 150 evaluations", got)
	}
}

// TestRepositoryMaintainerResync: after enough evicted float inputs
// the maintainer requests a rebuild, and the next sweep performs it on
// the client-query path (counter moves, results stay identical to the
// interpreted execution).
func TestRepositoryMaintainerResync(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "k", Type: stream.TypeInt},
		stream.Field{Name: "f", Type: stream.TypeFloat},
	)
	table, err := storage.NewTable("t", schema,
		stream.Window{Kind: stream.CountWindow, Count: 8}, stream.NewManualClock(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	repo := NewQueryRepository(reg)
	defer repo.Close()
	const sql = "select k, avg(f) as a from t group by k"
	var got atomic.Value
	if _, err := repo.Register("t", sql, 1, func(rel *sqlengine.Relation) {
		got.Store(rel.String())
	}, table); err != nil {
		t.Fatal(err)
	}

	// Push well past the float-drift resync bound (65536 evicted float
	// inputs) on a tiny window.
	for i := 0; i < 66_000; i++ {
		e, err := stream.NewElement(schema, stream.Timestamp(i+1), int64(i%3), float64(i)/7)
		if err != nil {
			t.Fatal(err)
		}
		if err := table.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	opts := sqlengine.Options{Clock: stream.NewManualClock(1)}
	cat := sqlengine.MapCatalog{"T": sqlengine.RelationOfSource(table)}
	if n := repo.EvaluateFor("t", cat, opts); n != 1 {
		t.Fatalf("evaluated %d of 1", n)
	}
	if v := reg.Counter("client_query_resyncs").Value(); v == 0 {
		t.Error("client-query sweep did not resync a drift-bound maintainer")
	}
	want, err := sqlengine.ExecuteSQL(sql, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.Load(); g != want.String() {
		t.Errorf("post-resync result diverged:\nmaintained:\n%v\ninterpreted:\n%s", g, want)
	}
	if reg.Counter("client_query_incremental").Value() == 0 {
		t.Error("grouped rollup was not served by the incremental tier")
	}
}

// TestFloatGroupKeysStayCompiled: float group keys are excluded from
// the grouped incremental tier (distinct representations like -0.0 and
// +0.0 compare equal, so the maintainer's captured key values could
// diverge byte-wise from a window rescan after eviction); integer keys
// qualify.
func TestFloatGroupKeysStayCompiled(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "fk", Type: stream.TypeFloat},
		stream.Field{Name: "ik", Type: stream.TypeInt},
	)
	window := stream.Window{Kind: stream.CountWindow, Count: 10}
	compile := func(sql string) *sqlengine.Plan {
		t.Helper()
		stmt, err := sqlengine.ParseCached(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sqlengine.Compile(stmt, sqlengine.ColumnsOfSchema(schema), "t")
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	if m := newIncMaintainer(compile("select fk, count(*) as n from t group by fk"), window, schema); m != nil {
		t.Error("float group key must stay on the compiled tier")
	}
	if m := newIncMaintainer(compile("select ik, fk, count(*) as n from t group by ik, fk"), window, schema); m != nil {
		t.Error("mixed keys with a float column must stay on the compiled tier")
	}
	if m := newIncMaintainer(compile("select ik, avg(fk) as a from t group by ik"), window, schema); m == nil {
		t.Error("integer group key (float only as aggregate input) should qualify")
	}
	if m := newIncMaintainer(compile("select ik, timed, count(*) as n from t group by ik, timed"), window, schema); m == nil {
		t.Error("TIMED group key is an int and should qualify")
	}
}

func BenchmarkRepositorySweep(b *testing.B) {
	// Micro-benchmark kept beside the tests: 1000 mixed queries on a
	// 100-element window, grouped vs serial (see BenchmarkClientQueries
	// for the acceptance version on a 1000-element window).
	c, err := New(Options{Name: "bench-repo", Clock: stream.NewManualClock(1), SyncProcessing: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	deployVals(b, c, 200)
	for i := 0; i < 100; i++ {
		c.Pulse()
	}
	for i := 0; i < 1000; i++ {
		sql := clientQueryShapes[i%len(clientQueryShapes)]
		if i%2 == 1 {
			sql = fmt.Sprintf("select count(*) from vals where value > %d", i)
		}
		if _, err := c.RegisterQuery("vals", sql, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	cat := c.Catalog()
	opts := sqlengine.Options{Clock: c.Clock()}
	repo := c.QueryRepositoryRef()
	b.Run("grouped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repo.EvaluateFor("vals", cat, opts)
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repo.EvaluateForSerial("vals", cat, opts)
		}
	})
}
