package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gsn/internal/notify"
	"gsn/internal/sqlengine"
	"gsn/internal/stream"
	"gsn/internal/vsensor"
)

// moteAvgDescriptor mirrors the paper's Figure 1: an averaged
// temperature over a window, fed by a (simulated, pull-only) mote.
const moteAvgDescriptor = `
<virtual-sensor name="avg-temp">
  <life-cycle pool-size="4" />
  <output-structure>
    <field name="TEMPERATURE" type="double"/>
  </output-structure>
  <storage size="50" />
  <input-stream name="in">
    <stream-source alias="src1" storage-size="10">
      <address wrapper="mote">
        <predicate key="sensors" val="temperature"/>
        <predicate key="seed" val="7"/>
      </address>
      <query>select avg(temperature) from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>`

func testContainer(t *testing.T) *Container {
	t.Helper()
	c, err := New(Options{
		Name:           "test-node",
		Clock:          stream.NewManualClock(1_000_000),
		SyncProcessing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func deploy(t *testing.T, c *Container, xml string) {
	t.Helper()
	if err := c.DeployXML([]byte(xml)); err != nil {
		t.Fatalf("DeployXML: %v", err)
	}
}

func TestDeployPulseQuery(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)

	if n := c.Pulse(); n != 1 {
		t.Fatalf("Pulse injected %d", n)
	}
	vs, ok := c.Sensor("avg-temp")
	if !ok {
		t.Fatal("sensor not found")
	}
	st := vs.Stats()
	if st.Triggers != 1 || st.Outputs != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}

	rel, err := c.Query(`select count(*) from "avg-temp"`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rel.Rows[0][0] != int64(1) {
		t.Errorf("output rows = %v", rel.Rows[0][0])
	}

	// Averaged temperature should be a plausible double (mote reports
	// tenths of °C as integers; AVG yields a float).
	rel2, err := c.Query(`select temperature from "avg-temp"`)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rel2.Rows[0][0].(float64)
	if !ok || v < 100 || v > 350 {
		t.Errorf("temperature = %v (%T)", rel2.Rows[0][0], rel2.Rows[0][0])
	}
}

func TestWindowedAverageConverges(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	for i := 0; i < 30; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	st := vs.Stats()
	if st.Outputs != 30 {
		t.Fatalf("outputs = %d", st.Outputs)
	}
	// Source window is 10 elements: the window table must be bounded.
	if st.Sources[0].WindowLive != 10 {
		t.Errorf("source window live = %d, want 10", st.Sources[0].WindowLive)
	}
	// Output storage window is 50.
	if st.OutputLive != 30 {
		t.Errorf("output live = %d, want 30", st.OutputLive)
	}
}

// TestDeployWithIngestLanes: a descriptor opting in with lanes="auto"
// deploys, ingests through the lane tier end to end (the sensor's
// batch terminal stays a single publish per trigger), and surfaces
// the lane counters in the metrics snapshot.
func TestDeployWithIngestLanes(t *testing.T) {
	c, err := New(Options{
		Name:           "lanes-node",
		Clock:          stream.NewManualClock(1_000_000),
		SyncProcessing: true,
		DataDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deploy(t, c, strings.Replace(moteAvgDescriptor,
		`<storage size="50" />`,
		`<storage size="50" permanent-storage="true" sync="durable" lanes="auto"/>`, 1))

	for i := 0; i < 20; i++ {
		c.Pulse()
	}
	vs, ok := c.Sensor("avg-temp")
	if !ok {
		t.Fatal("sensor not found")
	}
	if st := vs.Stats(); st.Outputs != 20 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	snap := c.MetricsSnapshot()
	if _, ok := snap["lane_published_total"]; !ok {
		t.Fatalf("lane counters missing from metrics snapshot: %v", snap)
	}
	if _, ok := snap["lane_collapsed_total"]; !ok {
		t.Fatalf("lane_collapsed_total missing from metrics snapshot: %v", snap)
	}
	rel, err := c.Query(`select count(*) from "avg-temp"`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(20) {
		t.Errorf("output rows = %v, want 20", rel.Rows[0][0])
	}
}

func TestDeployValidationAtomicity(t *testing.T) {
	c := testContainer(t)
	bad := strings.Replace(moteAvgDescriptor, `wrapper="mote"`, `wrapper="warp-drive"`, 1)
	if err := c.DeployXML([]byte(bad)); err == nil {
		t.Fatal("unknown wrapper deployed")
	}
	// Nothing may remain: the same name must deploy cleanly afterwards.
	if got := c.Store().List(); len(got) != 0 {
		t.Fatalf("tables leaked by failed deploy: %v", got)
	}
	deploy(t, c, moteAvgDescriptor)
}

func TestDuplicateDeployRejected(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	if err := c.DeployXML([]byte(moteAvgDescriptor)); err == nil {
		t.Fatal("duplicate deploy succeeded")
	}
}

func TestUndeployCleansUp(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	c.Pulse()
	if err := c.Undeploy("AVG-TEMP"); err != nil {
		t.Fatalf("Undeploy: %v", err)
	}
	if _, ok := c.Sensor("avg-temp"); ok {
		t.Error("sensor still visible")
	}
	if got := c.Store().List(); len(got) != 0 {
		t.Errorf("tables remain: %v", got)
	}
	if len(c.Directory().Query(map[string]string{"name": "AVG-TEMP"})) != 0 {
		t.Error("directory entry remains")
	}
	if err := c.Undeploy("avg-temp"); err == nil {
		t.Error("double undeploy succeeded")
	}
}

func TestRedeployChangesConfiguration(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	c.Pulse()

	changed := strings.Replace(moteAvgDescriptor, `storage-size="10"`, `storage-size="3"`, 1)
	desc, err := vsensor.Parse([]byte(changed))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err != nil {
		t.Fatalf("Redeploy: %v", err)
	}
	for i := 0; i < 10; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	if live := vs.Stats().Sources[0].WindowLive; live != 3 {
		t.Errorf("window after redeploy = %d, want 3", live)
	}
	// Redeploy of a not-yet-deployed sensor acts as Deploy.
	if err := c.Undeploy("avg-temp"); err != nil {
		t.Fatal(err)
	}
	if err := c.Redeploy(desc); err != nil {
		t.Fatalf("Redeploy-as-deploy: %v", err)
	}
}

func TestDirectoryPublication(t *testing.T) {
	c := testContainer(t)
	withMeta := strings.Replace(moteAvgDescriptor, "<life-cycle",
		`<metadata><predicate key="type" val="temperature"/><predicate key="location" val="bc143"/></metadata><life-cycle`, 1)
	deploy(t, c, withMeta)
	got := c.Directory().Query(map[string]string{"type": "temperature", "location": "bc143"})
	if len(got) != 1 || got[0].Sensor != "AVG-TEMP" {
		t.Fatalf("directory query = %+v", got)
	}
}

func TestNotificationsOnOutput(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	var events atomic.Int64
	_, err := c.Subscribe("avg-temp", notify.FuncChannel{Fn: func(ev notify.Event) error {
		if ev.Sensor != "AVG-TEMP" {
			t.Errorf("event sensor = %q", ev.Sensor)
		}
		events.Add(1)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Pulse()
	}
	if !c.Notifier().Flush(time.Second) {
		t.Fatal("notifications did not drain")
	}
	if events.Load() != 5 {
		t.Errorf("events = %d, want 5", events.Load())
	}
}

func TestClientQueriesEvaluatePerTrigger(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	var results atomic.Int64
	id, err := c.RegisterQuery("avg-temp",
		`select temperature from "avg-temp" where temperature > 0`, 1,
		func(rel *sqlengine.Relation) { results.Add(int64(len(rel.Rows))) })
	if err != nil {
		t.Fatalf("RegisterQuery: %v", err)
	}
	for i := 0; i < 4; i++ {
		c.Pulse()
	}
	if results.Load() == 0 {
		t.Error("client query never produced rows")
	}
	stats := c.QueryRepositoryRef().Stats()
	if len(stats) != 1 || stats[0].Evaluations != 4 || stats[0].Errors != 0 {
		t.Errorf("query stats = %+v", stats)
	}
	if err := c.UnregisterQuery(id); err != nil {
		t.Fatal(err)
	}
	before := results.Load()
	c.Pulse()
	if results.Load() != before {
		t.Error("unregistered query still evaluates")
	}
	// Queries against undeployed sensors are rejected.
	if _, err := c.RegisterQuery("ghost", "select 1", 1, nil); err == nil {
		t.Error("query on undeployed sensor registered")
	}
}

func TestClientQuerySampling(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	if _, err := c.RegisterQuery("avg-temp", `select * from "avg-temp"`, 0.25, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		c.Pulse()
	}
	stats := c.QueryRepositoryRef().Stats()
	if ev := stats[0].Evaluations; ev < 50 || ev > 150 {
		t.Errorf("evaluations = %d of 400 at sampling 0.25", ev)
	}
}

func TestMultiSourceJoin(t *testing.T) {
	c := testContainer(t)
	deploy(t, c, `
<virtual-sensor name="combined">
  <output-structure>
    <field name="t" type="double"/>
    <field name="l" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="temps" storage-size="5">
      <address wrapper="mote">
        <predicate key="sensors" val="temperature"/><predicate key="seed" val="1"/>
      </address>
      <query>select avg(temperature) as t from WRAPPER</query>
    </stream-source>
    <stream-source alias="lights" storage-size="5">
      <address wrapper="mote">
        <predicate key="sensors" val="light"/><predicate key="seed" val="2"/>
      </address>
      <query>select avg(light) as l from WRAPPER</query>
    </stream-source>
    <query>select temps.t, lights.l from temps, lights</query>
  </input-stream>
</virtual-sensor>`)
	c.Pulse() // both sources produce once; two triggers fire
	vs, _ := c.Sensor("combined")
	st := vs.Stats()
	if st.Errors != 0 {
		t.Fatalf("errors: %+v (last: %s)", st, st.LastError)
	}
	if st.Outputs < 2 {
		t.Fatalf("outputs = %d", st.Outputs)
	}
	// The first trigger fires before the second source has any data
	// (its window is empty → NULL); the second trigger sees both.
	rel, err := c.Query(`select t, l from combined where l is not null and t is not null`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Errorf("complete combined rows = %v", rel.Rows)
	}
}

func TestSamplingRateReducesTriggers(t *testing.T) {
	c := testContainer(t)
	sampled := strings.Replace(moteAvgDescriptor, `storage-size="10"`,
		`storage-size="10" sampling-rate="0.2"`, 1)
	deploy(t, c, sampled)
	for i := 0; i < 200; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	st := vs.Stats()
	if st.Triggers < 15 || st.Triggers > 85 {
		t.Errorf("triggers = %d of 200 at sampling 0.2", st.Triggers)
	}
	src := st.Sources[0]
	if src.Sampled.In != 200 || src.Sampled.Out != st.Triggers {
		t.Errorf("sampler stats = %+v vs triggers %d", src.Sampled, st.Triggers)
	}
}

func TestStreamCountBound(t *testing.T) {
	c := testContainer(t)
	bounded := strings.Replace(moteAvgDescriptor, `<input-stream name="in">`,
		`<input-stream name="in" count="5">`, 1)
	deploy(t, c, bounded)
	for i := 0; i < 20; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	if st := vs.Stats(); st.Triggers != 5 {
		t.Errorf("triggers = %d with count=5", st.Triggers)
	}
}

func TestRateBound(t *testing.T) {
	clock := stream.NewManualClock(1_000_000)
	c, err := New(Options{Clock: clock, SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// rate=2/s: pulsing every 100 simulated ms must shed ~80%.
	limited := strings.Replace(moteAvgDescriptor, `<input-stream name="in">`,
		`<input-stream name="in" rate="2">`, 1)
	if err := c.DeployXML([]byte(limited)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		clock.Advance(100 * time.Millisecond)
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	st := vs.Stats()
	// 10 simulated seconds at 2/s ≈ 20 triggers (+1 initial token).
	if st.Triggers < 15 || st.Triggers > 25 {
		t.Errorf("triggers = %d, want ≈20", st.Triggers)
	}
}

func TestAsyncPoolProcessing(t *testing.T) {
	c, err := New(Options{Clock: stream.SystemClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeployXML([]byte(moteAvgDescriptor)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := vs.Stats()
		if st.Outputs+st.Dropped+st.Coalesced >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := vs.Stats(); st.Errors != 0 {
		t.Errorf("errors = %d (%s)", st.Errors, st.LastError)
	}
}

func TestContainerCloseIdempotent(t *testing.T) {
	c, err := New(Options{Clock: stream.NewManualClock(0), SyncProcessing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXML([]byte(moteAvgDescriptor)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXML([]byte(moteAvgDescriptor)); err == nil {
		t.Error("deploy after close succeeded")
	}
}

func TestQueryUnknownTable(t *testing.T) {
	c := testContainer(t)
	if _, err := c.Query("select * from nothing_here"); err == nil {
		t.Error("query against missing table succeeded")
	}
}

func fixtureRel(names []string, rows ...[]stream.Value) *sqlengine.Relation {
	rel := sqlengine.NewRelation(names...)
	for _, row := range rows {
		rel.AddRow(row...)
	}
	return rel
}

func TestElementsFromRelationMapping(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "a", Type: stream.TypeInt},
		stream.Field{Name: "b", Type: stream.TypeString},
	)
	// Name-based (shuffled column order) with TIMED honoured.
	rel := fixtureRel([]string{"B", "A", "TIMED"},
		[]stream.Value{"x", int64(1), int64(12345)})
	elems, err := elementsFromRelation(schema, rel, 999)
	if err != nil {
		t.Fatal(err)
	}
	if elems[0].Value(0) != int64(1) || elems[0].Value(1) != "x" {
		t.Errorf("name-based mapping = %v", elems[0])
	}
	if elems[0].Timestamp() != 12345 {
		t.Errorf("TIMED not honoured: %v", elems[0].Timestamp())
	}
	// Positional (non-matching names).
	rel2 := fixtureRel([]string{"COL1", "COL2"}, []stream.Value{int64(5), "y"})
	elems2, err := elementsFromRelation(schema, rel2, 777)
	if err != nil {
		t.Fatal(err)
	}
	if elems2[0].Value(0) != int64(5) || elems2[0].Timestamp() != 777 {
		t.Errorf("positional mapping = %v", elems2[0])
	}
	// Arity failure.
	rel3 := fixtureRel([]string{"ONLY"}, []stream.Value{int64(1)})
	if _, err := elementsFromRelation(schema, rel3, 0); err == nil {
		t.Error("narrow relation accepted")
	}
	// Type failure.
	rel4 := fixtureRel([]string{"A", "B"}, []stream.Value{"not-an-int", "z"})
	if _, err := elementsFromRelation(schema, rel4, 0); err == nil {
		t.Error("type-mismatched row accepted")
	}
}

func TestProcessingPanicRecovered(t *testing.T) {
	// A query that errors at runtime (not parse time) must not take the
	// worker down: subsequent pulses keep working.
	c := testContainer(t)
	deploy(t, c, moteAvgDescriptor)
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	vs, _ := c.Sensor("avg-temp")
	if st := vs.Stats(); st.Outputs != 3 {
		t.Fatalf("outputs = %d", st.Outputs)
	}
}

func ExampleContainer_Query() {
	clock := stream.NewManualClock(1_000_000)
	c, _ := New(Options{Clock: clock, SyncProcessing: true})
	defer c.Close()
	c.DeployXML([]byte(`
<virtual-sensor name="ticks">
  <output-structure><field name="tick" type="integer"/></output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="10">
      <address wrapper="timer"/>
      <query>select tick from WRAPPER</query>
    </stream-source>
    <query>select * from s</query>
  </input-stream>
</virtual-sensor>`))
	for i := 0; i < 3; i++ {
		c.Pulse()
	}
	rel, _ := c.Query("select max(tick) from ticks")
	fmt.Println(rel.Rows[0][0])
	// Output: 3
}
